"""Unit tests for the expert-validation function."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answer_set import MISSING
from repro.core.validation import ExpertValidation
from repro.errors import InvalidValidationError


class TestConstruction:
    def test_empty_for_answer_set(self, table1_answer_set):
        validation = ExpertValidation.empty_for(table1_answer_set)
        assert validation.n_objects == 4
        assert validation.count == 0
        assert validation.ratio() == 0.0

    def test_from_mapping(self):
        validation = ExpertValidation.from_mapping({0: 1, 2: 0}, 4, 2)
        assert validation.count == 2
        assert validation.label_of(0) == 1
        assert validation.label_of(1) == MISSING

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(InvalidValidationError):
            ExpertValidation(-1, 2)
        with pytest.raises(InvalidValidationError):
            ExpertValidation(3, 0)

    def test_zero_objects_allowed(self):
        validation = ExpertValidation(0, 2)
        assert validation.ratio() == 0.0
        assert validation.validated_indices().size == 0


class TestAssign:
    def test_assign_and_query(self):
        validation = ExpertValidation(5, 3)
        validation.assign(2, 1)
        assert validation.is_validated(2)
        assert not validation.is_validated(0)
        assert validation.label_of(2) == 1
        assert validation.validated_indices().tolist() == [2]
        assert validation.unvalidated_indices().tolist() == [0, 1, 3, 4]
        assert validation.validated_labels().tolist() == [1]

    def test_out_of_range_rejected(self):
        validation = ExpertValidation(3, 2)
        with pytest.raises(InvalidValidationError, match="object index"):
            validation.assign(3, 0)
        with pytest.raises(InvalidValidationError, match="label code"):
            validation.assign(0, 2)
        with pytest.raises(InvalidValidationError, match="label code"):
            validation.assign(0, -1)

    def test_conflicting_reassign_needs_overwrite(self):
        validation = ExpertValidation(3, 2)
        validation.assign(0, 1)
        with pytest.raises(InvalidValidationError, match="already validated"):
            validation.assign(0, 0)
        validation.assign(0, 1)  # same label is fine
        validation.assign(0, 0, overwrite=True)
        assert validation.label_of(0) == 0

    def test_retract(self):
        validation = ExpertValidation(3, 2)
        validation.assign(1, 0)
        validation.retract(1)
        assert not validation.is_validated(1)
        assert validation.count == 0


class TestCopies:
    def test_copy_is_independent(self):
        validation = ExpertValidation(3, 2)
        validation.assign(0, 1)
        clone = validation.copy()
        clone.assign(1, 0)
        assert validation.count == 1
        assert clone.count == 2
        assert clone == ExpertValidation.from_mapping({0: 1, 1: 0}, 3, 2)

    def test_without_removes_entries(self):
        validation = ExpertValidation.from_mapping({0: 1, 1: 0, 2: 1}, 3, 2)
        reduced = validation.without([0, 2])
        assert reduced.count == 1
        assert validation.count == 3
        single = validation.without(1)
        assert single.count == 2

    def test_with_assignment_hypothetical(self):
        validation = ExpertValidation(3, 2)
        hypo = validation.with_assignment(1, 1)
        assert hypo.label_of(1) == 1
        assert validation.count == 0

    def test_as_dict_and_array(self):
        validation = ExpertValidation.from_mapping({2: 0}, 3, 2)
        assert validation.as_dict() == {2: 0}
        array = validation.as_array()
        assert array.tolist() == [MISSING, MISSING, 0]
        array[0] = 1  # copies are safe to mutate
        assert not validation.is_validated(0)

    def test_ratio(self):
        validation = ExpertValidation(4, 2)
        validation.assign(0, 0)
        validation.assign(1, 1)
        assert validation.ratio() == pytest.approx(0.5)

    def test_equality(self):
        a = ExpertValidation.from_mapping({0: 1}, 3, 2)
        b = ExpertValidation.from_mapping({0: 1}, 3, 2)
        c = ExpertValidation.from_mapping({0: 0}, 3, 2)
        assert a == b
        assert a != c

    def test_repr(self):
        validation = ExpertValidation.from_mapping({0: 1}, 3, 2)
        assert "1/3" in repr(validation)
