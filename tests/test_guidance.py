"""Tests for the guidance strategies (§5.2–§5.4, §6.6 baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.em import DawidSkeneEM
from repro.core.iem import IncrementalEM
from repro.core.uncertainty import answer_set_uncertainty, object_entropies
from repro.core.validation import ExpertValidation
from repro.errors import GuidanceError
from repro.guidance import (
    GuidanceContext,
    HybridStrategy,
    InformationGainStrategy,
    MaxEntropyStrategy,
    RandomStrategy,
    Selection,
    WorkerDrivenStrategy,
    argmax_with_ties,
    expected_posterior_entropy,
    information_gain,
)
from repro.workers.spammer_detection import SpammerDetector


def make_context(answer_set, validation=None, rng_seed=0, weight=0.0):
    validation = validation or ExpertValidation.empty_for(answer_set)
    aggregator = IncrementalEM()
    prob_set = aggregator.conclude(answer_set, validation)
    return GuidanceContext(
        prob_set=prob_set,
        aggregator=aggregator,
        detector=SpammerDetector(),
        rng=np.random.default_rng(rng_seed),
        hybrid_weight=weight,
    )


class TestArgmaxWithTies:
    def test_deterministic_first_max(self):
        scores = np.array([1.0, 3.0, 3.0])
        candidates = np.array([10, 20, 30])
        assert argmax_with_ties(scores, candidates) == 20

    def test_random_tie_break_is_among_tied(self):
        scores = np.array([3.0, 3.0, 1.0])
        candidates = np.array([10, 20, 30])
        rng = np.random.default_rng(0)
        picks = {argmax_with_ties(scores, candidates, rng) for _ in range(20)}
        assert picks <= {10, 20}
        assert len(picks) == 2


class TestRandomStrategy:
    def test_selects_unvalidated_only(self, table1_answer_set):
        validation = ExpertValidation.from_mapping({0: 1, 1: 2}, 4, 4)
        context = make_context(table1_answer_set, validation)
        for _ in range(10):
            selection = RandomStrategy().select(context)
            assert selection.object_index in (2, 3)
            assert selection.strategy == "random"

    def test_raises_when_exhausted(self, table1_answer_set):
        validation = ExpertValidation.from_mapping(
            {0: 0, 1: 0, 2: 0, 3: 0}, 4, 4)
        context = make_context(table1_answer_set, validation)
        with pytest.raises(GuidanceError):
            RandomStrategy().select(context)


class TestMaxEntropyStrategy:
    def test_selects_highest_entropy_object(self, table1_answer_set):
        context = make_context(table1_answer_set)
        selection = MaxEntropyStrategy(random_ties=False).select(context)
        entropies = object_entropies(context.prob_set.assignment)
        assert entropies[selection.object_index] == pytest.approx(
            entropies.max())
        assert selection.strategy == "baseline"

    def test_scores_align_with_candidates(self, table1_answer_set):
        validation = ExpertValidation.from_mapping({1: 2}, 4, 4)
        context = make_context(table1_answer_set, validation)
        selection = MaxEntropyStrategy().select(context)
        assert selection.candidate_indices.tolist() == [0, 2, 3]
        assert selection.scores.shape == (3,)
        assert selection.object_index != 1


class TestInformationGain:
    def test_validated_object_has_no_gain(self, small_crowd):
        """Hypothetically validating an object the model is certain about
        cannot reduce entropy more than an uncertain one (on average the
        chosen object should carry positive gain)."""
        context = make_context(small_crowd.answer_set)
        strategy = InformationGainStrategy()
        selection = strategy.select(context)
        assert selection.strategy == "uncertainty"
        assert selection.scores is not None
        best = selection.scores.max()
        assert best >= -1e-6  # gain of the best object is non-negative

    def test_gain_definition_matches_helper(self, table1_answer_set):
        context = make_context(table1_answer_set)
        aggregator = IncrementalEM(max_iter=25)
        gain = information_gain(context.prob_set, aggregator, 3)
        expected = answer_set_uncertainty(context.prob_set) - \
            expected_posterior_entropy(context.prob_set, aggregator, 3)
        assert gain == pytest.approx(expected)

    def test_candidate_limit_prunes_to_top_entropy(self, small_crowd):
        context = make_context(small_crowd.answer_set)
        strategy = InformationGainStrategy(candidate_limit=3)
        selection = strategy.select(context)
        assert selection.candidate_indices.size == 3
        entropies = object_entropies(context.prob_set.assignment)
        chosen_floor = entropies[selection.candidate_indices].min()
        others = np.setdiff1d(np.arange(small_crowd.answer_set.n_objects),
                              selection.candidate_indices)
        assert np.all(entropies[others] <= chosen_floor + 1e-9)

    def test_invalid_candidate_limit(self):
        with pytest.raises(ValueError):
            InformationGainStrategy(candidate_limit=0)

    def test_threaded_executor_matches_serial(self, table1_answer_set):
        from repro.parallel import Executor
        context = make_context(table1_answer_set)
        serial = InformationGainStrategy().select(context)
        with Executor("threads", max_workers=2) as executor:
            threaded = InformationGainStrategy(executor=executor).select(
                make_context(table1_answer_set))
        assert serial.object_index == threaded.object_index


class TestWorkerDriven:
    def test_prefers_objects_answered_by_suspects(self, spammy_crowd):
        """After some validations, the worker-driven pick lands on an
        object whose validation can change detection status — one that
        suspect workers answered."""
        gold = spammy_crowd.gold
        validation = ExpertValidation.from_mapping(
            {i: int(gold[i]) for i in range(6)},
            spammy_crowd.answer_set.n_objects, 2)
        context = make_context(spammy_crowd.answer_set, validation)
        selection = WorkerDrivenStrategy().select(context)
        assert selection.strategy == "worker"
        assert not validation.is_validated(selection.object_index)
        assert selection.scores is not None
        assert np.all(selection.scores >= 0)

    def test_candidate_limit(self, spammy_crowd):
        context = make_context(spammy_crowd.answer_set)
        selection = WorkerDrivenStrategy(candidate_limit=5).select(context)
        assert selection.candidate_indices.size == 5

    def test_invalid_candidate_limit(self):
        with pytest.raises(ValueError):
            WorkerDrivenStrategy(candidate_limit=0)

    def test_expected_detections_weighting(self, table2_answer_sets,
                                           table2_gold):
        """R(W|o) is a belief-weighted average of per-label counts, so it
        lies between the min and max hypothetical counts."""
        validation = ExpertValidation.from_mapping(
            {i: int(table2_gold[i]) for i in range(4)}, 8, 2)
        context = make_context(table2_answer_sets, validation)
        selection = WorkerDrivenStrategy().select(context)
        assert selection.scores.max() <= table2_answer_sets.n_workers


class TestHybrid:
    def test_zero_weight_always_uncertainty(self, table1_answer_set):
        strategy = HybridStrategy()
        context = make_context(table1_answer_set, weight=0.0)
        for _ in range(5):
            assert strategy.select(context).strategy == "uncertainty"

    def test_weight_one_nearly_always_worker(self, table1_answer_set):
        strategy = HybridStrategy()
        context = make_context(table1_answer_set, weight=0.999999)
        picks = {strategy.select(context).strategy for _ in range(5)}
        assert picks == {"worker"}

    def test_mixture_uses_both(self, table1_answer_set):
        strategy = HybridStrategy()
        context = make_context(table1_answer_set, weight=0.5, rng_seed=123)
        picks = {strategy.select(context).strategy for _ in range(30)}
        assert picks == {"worker", "uncertainty"}

    def test_custom_substrategies(self, table1_answer_set):
        strategy = HybridStrategy(uncertainty=MaxEntropyStrategy(),
                                  worker=RandomStrategy())
        context = make_context(table1_answer_set, weight=0.0)
        assert strategy.select(context).strategy == "baseline"


class TestSelection:
    def test_selection_equality_ignores_scores(self):
        a = Selection(object_index=1, strategy="x",
                      scores=np.array([1.0]))
        b = Selection(object_index=1, strategy="x",
                      scores=np.array([2.0]))
        assert a == b


class TestArgmaxGuards:
    """Regression tests for the NaN / tie-band fixes in argmax_with_ties."""

    def test_nan_scores_raise_typed_error(self):
        scores = np.array([0.5, float("nan"), 0.3])
        candidates = np.array([4, 7, 9])
        with pytest.raises(GuidanceError, match="NaN"):
            argmax_with_ties(scores, candidates)

    def test_nan_error_names_the_offending_objects(self):
        scores = np.array([0.5, float("nan")])
        candidates = np.array([4, 7])
        with pytest.raises(GuidanceError, match=r"objects \[7\]"):
            argmax_with_ties(scores, candidates, np.random.default_rng(0))

    def test_empty_scores_raise_typed_error(self):
        with pytest.raises(GuidanceError, match="no scores"):
            argmax_with_ties(np.array([]), np.array([], dtype=int))

    def test_all_nan_raises_not_index_error(self):
        # Pre-fix: np.flatnonzero(scores >= nan band) was empty and
        # tied[0] blew up with an opaque IndexError.
        scores = np.full(3, np.nan)
        with pytest.raises(GuidanceError):
            argmax_with_ties(scores, np.arange(3))

    def test_tie_band_is_scale_relative(self):
        # 1e6 and 1e6 − 1e-8 are equal up to float noise at this scale;
        # the absolute 1e-12 band used to split them, so the random tie
        # break never saw the second candidate.
        scores = np.array([1e6, 1e6 - 1e-8, 0.0])
        candidates = np.array([10, 20, 30])
        picks = {argmax_with_ties(scores, candidates,
                                  np.random.default_rng(seed))
                 for seed in range(40)}
        assert picks == {10, 20}

    def test_small_scale_band_unchanged(self):
        # At |best| <= 1 the band is still exactly 1e-12: clearly distinct
        # small scores must not collapse into a tie.
        scores = np.array([1e-3, 1e-3 - 1e-6])
        candidates = np.array([1, 2])
        picks = {argmax_with_ties(scores, candidates,
                                  np.random.default_rng(seed))
                 for seed in range(20)}
        assert picks == {1}


class TestStableTopKPruning:
    """Regression tests: boundary ties in top-K pruning keep lowest index."""

    @staticmethod
    def _uniform_answer_set(n_objects=8, n_workers=5):
        # Every object has the identical answer pattern, so entropies and
        # coverages tie exactly across all objects.
        row = np.array([0, 1, 0, 1, 1])[:n_workers]
        from repro.core.answer_set import AnswerSet
        return AnswerSet(np.tile(row, (n_objects, 1)), labels=("T", "F"))

    def test_information_gain_prunes_lowest_indices_on_ties(self):
        answer_set = self._uniform_answer_set()
        context = make_context(answer_set)
        strategy = InformationGainStrategy(candidate_limit=3)
        selection = strategy.select(context)
        # Pre-fix np.argsort(x)[::-1][:K] kept the HIGHEST indices {5,6,7}.
        assert selection.candidate_indices.tolist() == [0, 1, 2]

    def test_worker_driven_prunes_lowest_indices_on_ties(self):
        answer_set = self._uniform_answer_set()
        context = make_context(answer_set)
        strategy = WorkerDrivenStrategy(candidate_limit=4)
        selection = strategy.select(context)
        assert selection.candidate_indices.tolist() == [0, 1, 2, 3]

    def test_pruned_set_deterministic_across_runs(self, small_crowd):
        strategy = InformationGainStrategy(candidate_limit=5)
        sets = []
        for _ in range(3):
            context = make_context(small_crowd.answer_set)
            sets.append(strategy.select(context).candidate_indices.tolist())
        assert sets[0] == sets[1] == sets[2]
