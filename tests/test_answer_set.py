"""Unit tests for the answer-set data model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer_set import MISSING, AnswerSet
from repro.errors import InvalidAnswerSetError


class TestConstruction:
    def test_basic_shape(self, table1_answer_set):
        assert table1_answer_set.n_objects == 4
        assert table1_answer_set.n_workers == 5
        assert table1_answer_set.n_labels == 4
        assert table1_answer_set.n_answers == 20

    def test_default_names(self, table1_answer_set):
        assert table1_answer_set.objects == ("o1", "o2", "o3", "o4")
        assert table1_answer_set.workers == ("w1", "w2", "w3", "w4", "w5")

    def test_matrix_is_read_only(self, table1_answer_set):
        with pytest.raises(ValueError):
            table1_answer_set.matrix[0, 0] = 3

    def test_matrix_is_copied(self):
        source = np.array([[0, 1], [1, 0]])
        answers = AnswerSet(source, labels=("a", "b"))
        source[0, 0] = 1
        assert answers.answer(0, 0) == 0

    def test_rejects_non_2d_matrix(self):
        with pytest.raises(InvalidAnswerSetError, match="2-D"):
            AnswerSet(np.zeros(3, dtype=int), labels=("a",))

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(InvalidAnswerSetError, match="codes outside"):
            AnswerSet(np.array([[5]]), labels=("a", "b"))
        with pytest.raises(InvalidAnswerSetError, match="codes outside"):
            AnswerSet(np.array([[-2]]), labels=("a", "b"))

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ValueError, match="duplicate"):
            AnswerSet(np.array([[0]]), labels=("a", "a"))

    def test_rejects_duplicate_objects(self):
        with pytest.raises(ValueError, match="duplicate"):
            AnswerSet(np.array([[0], [0]]), labels=("a",),
                      objects=("x", "x"))

    def test_rejects_wrong_name_counts(self):
        with pytest.raises(InvalidAnswerSetError, match="object names"):
            AnswerSet(np.array([[0]]), labels=("a",), objects=("x", "y"))
        with pytest.raises(InvalidAnswerSetError, match="worker names"):
            AnswerSet(np.array([[0]]), labels=("a",), workers=())

    def test_rejects_empty_labels(self):
        with pytest.raises(InvalidAnswerSetError, match="at least one label"):
            AnswerSet(np.empty((0, 0), dtype=int), labels=())

    def test_missing_cells_allowed(self):
        answers = AnswerSet(np.array([[MISSING, 0], [1, MISSING]]),
                            labels=("a", "b"))
        assert answers.n_answers == 2
        assert answers.density == 0.5


class TestFromTriples:
    def test_round_trip(self):
        triples = [("x", "alice", "cat"), ("x", "bob", "dog"),
                   ("y", "alice", "dog")]
        answers = AnswerSet.from_triples(triples)
        assert answers.objects == ("x", "y")
        assert answers.workers == ("alice", "bob")
        assert answers.labels == ("cat", "dog")
        assert answers.answer("x", "bob") == answers.label_index("dog")
        assert answers.answer("y", "bob") == MISSING

    def test_explicit_vocabularies_fix_order(self):
        triples = [("x", "w", "b")]
        answers = AnswerSet.from_triples(triples, labels=("a", "b", "c"))
        assert answers.labels == ("a", "b", "c")
        assert answers.answer("x", "w") == 1

    def test_conflicting_duplicate_rejected(self):
        with pytest.raises(InvalidAnswerSetError, match="conflicting"):
            AnswerSet.from_triples([("x", "w", "a"), ("x", "w", "b")])

    def test_exact_duplicate_tolerated(self):
        answers = AnswerSet.from_triples([("x", "w", "a"), ("x", "w", "a")])
        assert answers.n_answers == 1

    def test_unknown_name_with_explicit_vocab(self):
        with pytest.raises(InvalidAnswerSetError, match="outside"):
            AnswerSet.from_triples([("x", "w", "zzz")], labels=("a",))

    def test_empty_triples_rejected(self):
        with pytest.raises(InvalidAnswerSetError):
            AnswerSet.from_triples([])


class TestAccessors:
    def test_name_and_index_resolution(self, table1_answer_set):
        assert table1_answer_set.object_index("o3") == 2
        assert table1_answer_set.worker_index("w5") == 4
        assert table1_answer_set.label_index("4") == 3
        assert table1_answer_set.object_index(1) == 1

    def test_unknown_names_raise_keyerror(self, table1_answer_set):
        with pytest.raises(KeyError):
            table1_answer_set.object_index("nope")
        with pytest.raises(KeyError):
            table1_answer_set.worker_index("nope")
        with pytest.raises(KeyError):
            table1_answer_set.label_index("nope")

    def test_vote_counts_match_table1(self, table1_answer_set):
        counts = table1_answer_set.vote_counts()
        # o1: labels 2,3,2,2,3 -> codes 1×3, 2×2
        assert counts[0].tolist() == [0, 3, 2, 0]
        # o4: labels 4,1,2,1,3 -> one of each except two 1s
        assert counts[3].tolist() == [2, 1, 1, 1]

    def test_answers_per_object_and_worker(self):
        answers = AnswerSet(np.array([[0, MISSING], [0, 1]]), labels=("a", "b"))
        assert answers.answers_per_object().tolist() == [1, 2]
        assert answers.answers_per_worker().tolist() == [2, 1]

    def test_label_histogram(self, table1_answer_set):
        hist = table1_answer_set.label_histogram()
        assert hist.sum() == 20
        assert hist.tolist() == [4, 6, 7, 3]


class TestTransformations:
    def test_mask_workers_blanks_columns(self, table1_answer_set):
        masked = table1_answer_set.mask_workers(["w5", 0])
        assert masked.n_answers == 12
        assert masked.answer(0, "w5") == MISSING
        assert masked.workers == table1_answer_set.workers  # kept in vocab

    def test_mask_workers_empty_is_identity(self, table1_answer_set):
        assert table1_answer_set.mask_workers([]) is table1_answer_set

    def test_subset_objects(self, table1_answer_set):
        subset = table1_answer_set.subset_objects([2, 0])
        assert subset.objects == ("o3", "o1")
        assert subset.answer(0, 0) == table1_answer_set.answer(2, 0)

    def test_with_answers_adds_cells(self):
        answers = AnswerSet(np.array([[MISSING, 0]]), labels=("a", "b"))
        extended = answers.with_answers([(0, 0, "b")])
        assert extended.answer(0, 0) == 1
        assert answers.answer(0, 0) == MISSING  # original untouched

    def test_with_answers_rejects_overwrite(self, table1_answer_set):
        with pytest.raises(InvalidAnswerSetError, match="already holds"):
            table1_answer_set.with_answers([(0, 0, "1")])

    def test_with_worker_appends_column(self, table1_answer_set):
        extended = table1_answer_set.with_worker("expert", {0: "2", 3: "2"})
        assert extended.n_workers == 6
        assert extended.answer(0, "expert") == 1
        assert extended.answer(1, "expert") == MISSING

    def test_with_worker_rejects_duplicate_name(self, table1_answer_set):
        with pytest.raises(InvalidAnswerSetError, match="already exists"):
            table1_answer_set.with_worker("w1", {})


class TestDunders:
    def test_equality(self, table1_answer_set):
        clone = AnswerSet(table1_answer_set.matrix,
                          table1_answer_set.labels,
                          table1_answer_set.objects,
                          table1_answer_set.workers)
        assert clone == table1_answer_set
        assert hash(clone) == hash(table1_answer_set)
        assert table1_answer_set != table1_answer_set.mask_workers([0])

    def test_repr(self, table1_answer_set):
        text = repr(table1_answer_set)
        assert "n_objects=4" in text and "n_workers=5" in text


@given(
    n=st.integers(min_value=1, max_value=8),
    k=st.integers(min_value=1, max_value=8),
    m=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_property_counts_consistent(n, k, m, seed):
    """Vote counts, per-object and per-worker counts all agree in total."""
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, m, size=(n, k))
    answers = AnswerSet(matrix, labels=[f"l{i}" for i in range(m)])
    total = answers.n_answers
    assert answers.answers_per_object().sum() == total
    assert answers.answers_per_worker().sum() == total
    assert answers.vote_counts().sum() == total
    assert answers.label_histogram().sum() == total
    assert 0.0 <= answers.density <= 1.0


@given(
    n=st.integers(min_value=1, max_value=6),
    k=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_property_masking_reduces_answers(n, k, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, 2, size=(n, k))
    answers = AnswerSet(matrix, labels=("a", "b"))
    masked = answers.mask_workers([0])
    assert masked.n_answers <= answers.n_answers
    assert masked.answers_per_worker()[0] == 0
