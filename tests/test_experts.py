"""Tests for simulated experts and the confirmation check (§5.5, §6.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.errors import ExpertError
from repro.experts.confirmation import ConfirmationCheck
from repro.experts.simulated import (
    CallbackExpert,
    NoisyExpert,
    OracleExpert,
    ScriptedExpert,
)


class TestOracleExpert:
    def test_returns_gold(self):
        expert = OracleExpert([1, 0, 1])
        assert expert.validate(0) == 1
        assert expert.validate(2) == 1
        assert expert.reconsider(1) == 0

    def test_rejects_non_vector_gold(self):
        with pytest.raises(ExpertError):
            OracleExpert(np.zeros((2, 2)))


class TestNoisyExpert:
    def test_zero_probability_is_oracle(self):
        expert = NoisyExpert([0, 1, 0], 2, mistake_probability=0.0, rng=0)
        assert [expert.validate(i) for i in range(3)] == [0, 1, 0]
        assert expert.mistakes == set()

    def test_mistake_rate_roughly_p(self):
        gold = np.zeros(400, dtype=int)
        expert = NoisyExpert(gold, 2, mistake_probability=0.25, rng=1)
        answers = [expert.validate(i) for i in range(400)]
        rate = float(np.mean(np.array(answers) != 0))
        assert 0.15 < rate < 0.35

    def test_confirm_bias_prefers_wrong_aggregate(self):
        gold = np.zeros(300, dtype=int)
        expert = NoisyExpert(gold, 3, mistake_probability=1.0,
                             confirm_bias=1.0, rng=2)
        # When the aggregated answer is wrong, a slip confirms it.
        answer = expert.validate(0, {"aggregated": 2})
        assert answer == 2
        # When the aggregated answer is correct, the slip is a random wrong
        # label instead (cannot "wrongly confirm" a correct answer).
        answer = expert.validate(1, {"aggregated": 0})
        assert answer != 0

    def test_reconsider_returns_truth_and_clears_mistake(self):
        expert = NoisyExpert([1], 2, mistake_probability=1.0, rng=0)
        assert expert.validate(0) == 0  # slipped
        assert 0 in expert.mistakes
        assert expert.reconsider(0) == 1
        assert 0 not in expert.mistakes

    def test_single_label_cannot_slip(self):
        expert = NoisyExpert([0], 1, mistake_probability=1.0, rng=0)
        assert expert.validate(0) == 0
        assert expert.mistakes == set()

    def test_parameter_validation(self):
        with pytest.raises(ExpertError):
            NoisyExpert([0], 2, mistake_probability=1.5)
        with pytest.raises(ExpertError):
            NoisyExpert([0], 2, mistake_probability=0.1, confirm_bias=-0.1)


class TestScriptedAndCallback:
    def test_scripted_replays(self):
        expert = ScriptedExpert({0: 1, 2: 0})
        assert expert.validate(0) == 1
        with pytest.raises(ExpertError):
            expert.validate(1)

    def test_callback_bridges(self):
        expert = CallbackExpert(lambda obj, ctx: obj % 2)
        assert expert.validate(3) == 1
        assert expert.validate(4) == 0


class TestConfirmationCheck:
    def test_flags_injected_mistake(self, small_crowd):
        """Validate several objects correctly, inject one wrong validation;
        the leave-one-out check should flag exactly the wrong one."""
        answers = small_crowd.answer_set
        gold = small_crowd.gold
        validation = ExpertValidation.empty_for(answers)
        for obj in range(6):
            validation.assign(obj, int(gold[obj]))
        wrong_obj = 7
        validation.assign(wrong_obj, int(1 - gold[wrong_obj]))
        aggregator = IncrementalEM()
        current = aggregator.conclude(answers, validation)
        report = ConfirmationCheck(aggregator).run(answers, validation,
                                                   current)
        assert wrong_obj in report.flagged.tolist()
        assert report.n_flagged <= 2  # at most one extra borderline flag

    def test_clean_validations_mostly_unflagged(self, small_crowd):
        answers = small_crowd.answer_set
        gold = small_crowd.gold
        validation = ExpertValidation.empty_for(answers)
        for obj in range(8):
            validation.assign(obj, int(gold[obj]))
        aggregator = IncrementalEM()
        current = aggregator.conclude(answers, validation)
        report = ConfirmationCheck(aggregator).run(answers, validation,
                                                   current)
        assert report.n_flagged <= 1

    def test_skips_with_too_few_validations(self, small_crowd):
        validation = ExpertValidation.empty_for(small_crowd.answer_set)
        validation.assign(0, int(small_crowd.gold[0]))
        report = ConfirmationCheck(min_other_validations=1).run(
            small_crowd.answer_set, validation)
        assert report.checked.size == 0
        assert report.n_flagged == 0
