"""Checkpoint/restore round-trips must be invisible to the computation.

The contract under test: a session that is checkpointed, destroyed,
restored, and driven forward is **bit-for-bit** indistinguishable from a
session that was never interrupted — same model floats, same statistics,
same RNG stream, same conflict bookkeeping. Three layers:

* the **property layer** (hypothesis) — random small scenarios are
  replayed with a checkpoint/restore wedged at a random cut point, under
  both store backends and both kernel-plan modes, and compared to the
  uninterrupted run;
* **value-object round-trips** — ``capture_state``/``restore_state`` and
  the on-disk manifest/segment encoding preserve every field
  (:meth:`~repro.state.SessionState.equals`), including the RNG
  bit-generator state;
* the **conflict-policy boundary** — the pinned first-write-wins policy
  (reject or drop-and-count, never last-write-wins) survives a restore.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidAnswerSetError
from repro.scenarios import ExpertSpec, ScenarioSpec, compile_scenario
from repro.simulation.stream import replay
from repro.state import FileSessionStore, MemorySessionStore
from repro.streaming import ValidationSession

small_specs = st.builds(
    lambda n, k, m, seed: ScenarioSpec(
        name="roundtrip-prop",
        n_objects=n, n_workers=k, n_labels=m,
        answers_per_object=min(4, k),
        expert=ExpertSpec(n_validations=max(2, n // 3)),
        seed=seed,
    ),
    n=st.integers(min_value=6, max_value=12),
    k=st.integers(min_value=4, max_value=7),
    m=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=2**20),
)


def _make_store(backend: str, tmpdir: str):
    if backend == "memory":
        return MemorySessionStore()
    return FileSessionStore(tmpdir)


def _assert_sessions_bit_equal(a: ValidationSession, b: ValidationSession):
    np.testing.assert_array_equal(a.model.assignment, b.model.assignment)
    np.testing.assert_array_equal(a.model.confusions, b.model.confusions)
    np.testing.assert_array_equal(a.model.priors, b.model.priors)
    assert a.n_concludes == b.n_concludes
    assert a.total_em_iterations == b.total_em_iterations
    assert a.n_conflicts == b.n_conflicts
    assert a.dirty_objects == b.dirty_objects
    # The RNG stream continues identically: state transfer, not reseeding.
    np.testing.assert_array_equal(a.rng.random(8), b.rng.random(8))


class TestRoundTripProperties:
    @given(spec=small_specs, backend=st.sampled_from(["memory", "file"]),
           use_plan=st.booleans(),
           cut_fraction=st.floats(min_value=0.2, max_value=0.8))
    @settings(max_examples=12, deadline=None)
    def test_checkpoint_restore_continue_is_bit_equal(
            self, spec, backend, use_plan, cut_fraction):
        """checkpoint → crash → restore → continue ≡ never interrupted."""
        compiled = compile_scenario(spec)
        events = list(compiled.events())
        cut = max(1, min(len(events) - 1,
                         int(round(cut_fraction * len(events)))))
        cadence = max(2, len(events) // 5)

        baseline = ValidationSession(1, 1, compiled.n_labels,
                                     use_plan=use_plan, rng=spec.seed)
        replay(events[:cut], baseline, conclude_every=cadence)
        replay(events[cut:], baseline, conclude_every=cadence)

        with tempfile.TemporaryDirectory() as tmpdir:
            store = _make_store(backend, tmpdir)
            live = ValidationSession(1, 1, compiled.n_labels,
                                     use_plan=use_plan, rng=spec.seed)
            replay(events[:cut], live, conclude_every=cadence, store=store)
            del live  # the crash: only the store survives
            restored = store.restore()
            session = restored.session
            assert session.use_plan is use_plan
            replay(events[cut:], session, conclude_every=cadence)

        _assert_sessions_bit_equal(baseline, session)

    @given(spec=small_specs, backend=st.sampled_from(["memory", "file"]))
    @settings(max_examples=8, deadline=None)
    def test_state_value_object_round_trips_exactly(self, spec, backend):
        """capture → store encode/decode → restore preserves every field."""
        compiled = compile_scenario(spec)
        session = ValidationSession.from_answer_set(compiled.answer_set)
        for event in compiled.validation_events:
            session.add_validation(event.object_index, event.label,
                                   overwrite=True)
        session.set_masked_workers({0})
        session.conclude()

        state = session.capture_state()
        with tempfile.TemporaryDirectory() as tmpdir:
            store = _make_store(backend, tmpdir)
            store.checkpoint(session)
            loaded = store.load_state()
        assert state.equals(loaded)
        assert loaded.rng_state == state.rng_state

        rebuilt = ValidationSession.restore_state(loaded)
        assert rebuilt.capture_state().equals(state)


class TestRngRoundTrip:
    def test_bit_generator_state_survives_file_round_trip(self, tmp_path):
        session = ValidationSession(6, 4, 2)
        session.add_answers([(0, 0, 1), (1, 1, 0), (2, 2, 1)])
        session.rng.random(17)  # advance to an arbitrary mid-stream point
        expected_state = session.rng.bit_generator.state

        store = FileSessionStore(tmp_path)
        store.checkpoint(session)
        restored = store.restore().session
        assert restored.rng.bit_generator.state == expected_state
        # Both generators now sit at the same point of the same stream.
        np.testing.assert_array_equal(restored.rng.random(16),
                                      session.rng.random(16))


class TestConflictPolicyAcrossRestore:
    """First-write-wins is pinned; the policy and its counter persist."""

    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_ignore_policy_and_counter_survive_restore(self, backend,
                                                       tmp_path):
        session = ValidationSession(4, 3, 2, on_conflict="ignore")
        session.add_answer(0, 0, 1)
        assert session.add_answer(0, 0, 0) is False  # dropped, counted
        assert session.n_conflicts == 1

        store = _make_store(backend, str(tmp_path))
        store.checkpoint(session)
        restored = store.restore().session
        assert restored.on_conflict == "ignore"
        assert restored.n_conflicts == 1
        # The original answer — not the conflicting retry — was kept.
        assert restored.stats.label_of(0, 0) == 1
        # The policy keeps applying after the boundary.
        assert restored.add_answer(0, 0, 0) is False
        assert restored.n_conflicts == 2
        assert restored.stats.label_of(0, 0) == 1

    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_error_policy_still_rejects_after_restore(self, backend,
                                                      tmp_path):
        session = ValidationSession(4, 3, 2)  # default: on_conflict="error"
        session.add_answer(0, 0, 1)
        store = _make_store(backend, str(tmp_path))
        store.checkpoint(session)
        restored = store.restore().session
        assert restored.on_conflict == "error"
        with pytest.raises(InvalidAnswerSetError):
            restored.add_answer(0, 0, 0)
        # Rejection means rejection: no last-write-wins anywhere.
        assert restored.stats.label_of(0, 0) == 1

    def test_per_call_override_survives_restore(self, tmp_path):
        """A session pinned to 'error' still honors per-call 'ignore'."""
        session = ValidationSession(4, 3, 2)
        session.add_answer(0, 0, 1)
        store = FileSessionStore(tmp_path)
        store.checkpoint(session)
        restored = store.restore().session
        assert restored.add_answer(0, 0, 0, on_conflict="ignore") is False
        assert restored.n_conflicts == 1
        assert restored.stats.label_of(0, 0) == 1
