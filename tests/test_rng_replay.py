"""Single-seed replayability: two runs from the same seed are bit-identical.

The audit behind these tests: `simulation/crowd.py` and
`simulation/realworld.py` thread the caller's generator through every draw
(types, confusions, sparsity mask, labels) — no internal
``ensure_rng(None)`` fallbacks remain — so a seeded campaign is exact. The
gaps were one level up: deriving *families* of streams consumed live
generator state (`split_rng`), and the two stream generators of a timed
replay had to be managed by hand. `spawn_rngs` plus the single-seed
entry points (`crowd_streams`, scenario compilation) close them; these
tests pin all of it bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.crowd import (
    CrowdConfig,
    answer_mask,
    draw_confusions,
    restore_answers,
    simulate_crowd,
    subsample_per_object,
)
from repro.simulation.realworld import load_dataset
from repro.simulation.stream import crowd_streams
from repro.utils.rng import ensure_rng, spawn_rngs, split_rng
from repro.workers.types import WorkerType


def _crowds(seed: int):
    config = CrowdConfig(n_objects=25, n_workers=10, n_labels=3,
                         answers_per_object=6, difficulty=0.2)
    return simulate_crowd(config, rng=seed), simulate_crowd(config, rng=seed)


class TestSpawnRngs:
    def test_stateless_and_deterministic(self):
        a = [g.random(5) for g in spawn_rngs(42, 3)]
        b = [g.random(5) for g in spawn_rngs(42, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_children_are_independent_of_sibling_consumption(self):
        first, second = spawn_rngs(7, 2)
        first.random(1000)  # heavy use of one child...
        _, second_fresh = spawn_rngs(7, 2)
        np.testing.assert_array_equal(  # ...never shifts the other
            second.random(4), second_fresh.random(4))

    def test_split_rng_depends_on_parent_state(self):
        """The documented contrast: split_rng is parent-state-dependent."""
        parent_a, parent_b = ensure_rng(3), ensure_rng(3)
        parent_b.random()  # consume one draw
        a = split_rng(parent_a, 1)[0].random(3)
        b = split_rng(parent_b, 1)[0].random(3)
        assert not np.array_equal(a, b)


class TestSimulatorReplay:
    def test_simulate_crowd_bit_identical(self):
        one, two = _crowds(seed=11)
        np.testing.assert_array_equal(one.answer_set.matrix,
                                      two.answer_set.matrix)
        np.testing.assert_array_equal(one.gold, two.gold)
        np.testing.assert_array_equal(one.true_confusions,
                                      two.true_confusions)
        assert one.worker_types == two.worker_types

    def test_extracted_helpers_replay(self):
        config = CrowdConfig(n_objects=15, n_workers=6,
                             answers_per_object=4)
        np.testing.assert_array_equal(answer_mask(config, 5),
                                      answer_mask(config, 5))
        types = (WorkerType.NORMAL, WorkerType.SLOPPY,
                 WorkerType.UNIFORM_SPAMMER)
        np.testing.assert_array_equal(
            draw_confusions(types, 2, 0.7, 9),
            draw_confusions(types, 2, 0.7, 9))

    def test_subsample_and_restore_replay(self):
        crowd, _ = _crowds(seed=13)
        thin_a = subsample_per_object(crowd, 3, rng=1)
        thin_b = subsample_per_object(crowd, 3, rng=1)
        np.testing.assert_array_equal(thin_a.matrix, thin_b.matrix)
        np.testing.assert_array_equal(
            restore_answers(thin_a, crowd.answer_set, 5, rng=2).matrix,
            restore_answers(thin_b, crowd.answer_set, 5, rng=2).matrix)

    def test_load_dataset_canonical_and_seeded(self):
        np.testing.assert_array_equal(
            load_dataset("val").answer_set.matrix,
            load_dataset("val").answer_set.matrix)
        np.testing.assert_array_equal(
            load_dataset("val", seed=77).answer_set.matrix,
            load_dataset("val", seed=77).answer_set.matrix)


class TestStreamReplay:
    def test_crowd_streams_single_seed_bit_identical(self):
        crowd, _ = _crowds(seed=17)
        events_a = list(crowd_streams(crowd, answer_rate=50.0,
                                      validation_rate=2.0,
                                      validation_limit=8, seed=4))
        events_b = list(crowd_streams(crowd, answer_rate=50.0,
                                      validation_rate=2.0,
                                      validation_limit=8, seed=4))
        assert events_a == events_b

    def test_crowd_streams_seed_changes_interleaving(self):
        crowd, _ = _crowds(seed=17)
        events_a = list(crowd_streams(crowd, seed=4))
        events_b = list(crowd_streams(crowd, seed=5))
        assert events_a != events_b


class TestScenarioReplay:
    def test_registry_scenarios_bit_identical(self):
        from repro.scenarios import compile_registered, scenario_names
        for name in scenario_names():
            a = compile_registered(name)
            b = compile_registered(name)
            np.testing.assert_array_equal(a.answer_set.matrix,
                                          b.answer_set.matrix)
            np.testing.assert_array_equal(a.expert_labels, b.expert_labels)
            assert a.answer_events == b.answer_events
            assert a.validation_events == b.validation_events
            assert a.behavior_workers == b.behavior_workers
