"""The scale-tier kernel contracts: width-adaptive index dtypes, the
shared CSR views, geometric log growth, the float32 accumulation path,
and bit-equality of the shard-parallel M-step.

These are the regression tripwires behind ``benchmarks/test_scale_tiers``:
the benchmarks assert throughput and memory, this file pins the
*semantics* that make the memory-lean encodings safe — narrow dtypes must
never overflow, narrowed checkpoints must round-trip, and the
shard-parallel kernel must be indistinguishable from the serial plan path
float for float.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import em_kernel
from repro.core.answer_set import MISSING, AnswerSet
from repro.core.em_kernel import INT32_BOUND, AnswerStats, index_dtype
from repro.parallel import Executor, ShardedKernel
from repro.state import FileSessionStore
from repro.streaming import ValidationSession

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def random_encoding(seed: int, n: int = 30, k: int = 8, m: int = 3,
                    density: float = 0.5):
    """A random sparse encoding plus a random soft assignment."""
    rng = np.random.default_rng(seed)
    matrix = np.where(rng.random((n, k)) < density,
                      rng.integers(0, m, size=(n, k)),
                      MISSING)
    labels = tuple(f"l{i}" for i in range(m))
    encoded = em_kernel.encode_answers(AnswerSet(matrix, labels))
    assignment = rng.random((n, m))
    assignment /= assignment.sum(axis=1, keepdims=True)
    return encoded, assignment


# ----------------------------------------------------------------------
# index_dtype: the single point of truth for narrowing decisions
# ----------------------------------------------------------------------
class TestIndexDtype:
    def test_small_dimensions_narrow_to_int32(self):
        assert index_dtype(1000, 50, 4, 20_000) == np.int32

    def test_exact_boundary_still_fits(self):
        # n·m == 2³¹ − 1 exactly: the flat assignment index tops out at
        # n·m − 1, so the bound itself is representable.
        assert index_dtype(INT32_BOUND // 3, 1, 3) == np.int32

    @pytest.mark.parametrize("n,k,m,a", [
        (INT32_BOUND // 3 + 1, 1, 3, 0),   # n·m crosses the bound
        (1, INT32_BOUND // 9 + 1, 3, 0),   # k·m·m crosses the bound
        (1, 1, 2, INT32_BOUND + 1),        # answer log crosses the bound
        (INT32_BOUND + 1, 1, 1, 0),        # n alone crosses the bound
    ])
    def test_any_crossing_bound_widens(self, n, k, m, a):
        assert index_dtype(n, k, m, a) == np.int64

    def test_encode_answers_carries_narrow_dtype(self):
        encoded, _ = random_encoding(0)
        assert encoded.object_index.dtype == np.int32
        assert encoded.worker_index.dtype == np.int32
        assert encoded.label_index.dtype == np.int32

    def test_kernel_plan_narrow_and_correct(self):
        encoded, _ = random_encoding(1)
        plan = em_kernel.kernel_plan(encoded)
        assert plan.conf_gather.dtype == np.int32
        assert plan.assign_gather.dtype == np.int32
        m = encoded.n_labels
        wi = encoded.worker_index.astype(np.int64)
        li = encoded.label_index.astype(np.int64)
        oi = encoded.object_index.astype(np.int64)
        rows = np.arange(m, dtype=np.int64)[:, None]
        np.testing.assert_array_equal(
            plan.conf_gather, (wi[None, :] * m + rows) * m + li[None, :])
        np.testing.assert_array_equal(
            plan.assign_gather, oi[None, :] * m + rows)

    def test_kernel_plan_upcasts_at_the_int32_boundary(self):
        """Declared dimensions past the bound force int64 plans whose flat
        indices exceed int32 range — the overflow this machinery exists to
        prevent. Tiny arrays, huge dims: the plan is built, never executed
        (a real (k·m·m) M-step buffer at this size would not fit)."""
        n = INT32_BOUND  # n·m = 3·(2³¹−1) overflows int32
        encoded = em_kernel.EncodedAnswers(
            n_objects=n, n_workers=2, n_labels=3,
            object_index=np.array([0, n - 1], dtype=np.int64),
            worker_index=np.array([0, 1], dtype=np.int64),
            label_index=np.array([1, 2], dtype=np.int64),
        )
        plan = em_kernel.kernel_plan(encoded)
        assert plan.assign_gather.dtype == np.int64
        # The last object's last row lands at (n−1)·3 + 2 > 2³¹ − 1:
        # correct only if the arithmetic ran in int64.
        assert int(plan.assign_gather[2, 1]) == (n - 1) * 3 + 2
        assert int(plan.assign_gather[2, 1]) > INT32_BOUND

    def test_block_subencoding_renarrows(self):
        """A small block cut out of a (hypothetically) huge encoding gets
        its own narrow dtype — sub-problems re-run the width decision."""
        encoded, _ = random_encoding(2)
        starts = em_kernel.object_segment_starts(encoded)
        objects = np.arange(5)
        workers = np.arange(encoded.n_workers)
        sub, used = em_kernel.block_subencoding(encoded, objects, workers,
                                                object_starts=starts)
        assert sub.object_index.dtype == np.int32
        assert sub.n_objects == 5
        np.testing.assert_array_equal(used, workers)


# ----------------------------------------------------------------------
# EncodingCSR: one set of segment views per encoding epoch
# ----------------------------------------------------------------------
class TestEncodingCSR:
    def test_object_slices_partition_the_encoding(self):
        encoded, _ = random_encoding(3)
        csr = em_kernel.csr_view(encoded)
        covered = 0
        for obj in range(encoded.n_objects):
            sl = csr.object_slice(obj)
            assert (encoded.object_index[sl] == obj).all()
            covered += sl.stop - sl.start
        assert covered == encoded.n_answers

    def test_worker_positions_match_flatnonzero_ascending(self):
        encoded, _ = random_encoding(4)
        csr = em_kernel.csr_view(encoded)
        for worker in range(encoded.n_workers):
            positions = csr.worker_positions(worker)
            np.testing.assert_array_equal(
                positions,
                np.flatnonzero(encoded.worker_index == worker))
            assert (np.diff(positions) > 0).all() or positions.size <= 1

    def test_views_carry_the_index_dtype(self):
        encoded, _ = random_encoding(5)
        csr = em_kernel.csr_view(encoded)
        assert csr.object_starts.dtype == np.int32
        assert csr.worker_order.dtype == np.int32
        assert csr.worker_starts.dtype == np.int32

    def test_memoized_once_per_encoding(self):
        encoded, _ = random_encoding(6)
        assert em_kernel.csr_view(encoded) is em_kernel.csr_view(encoded)
        # object_segment_starts delegates to the same shared view.
        assert em_kernel.object_segment_starts(encoded) \
            is em_kernel.csr_view(encoded).object_starts

    def test_pickling_drops_the_memoized_views(self):
        import pickle
        encoded, _ = random_encoding(7)
        em_kernel.kernel_plan(encoded)
        em_kernel.csr_view(encoded)
        clone = pickle.loads(pickle.dumps(encoded))
        assert "_csr_view" not in clone.__dict__
        assert "_kernel_plan" not in clone.__dict__
        np.testing.assert_array_equal(clone.object_index,
                                      encoded.object_index)


# ----------------------------------------------------------------------
# AnswerStats: geometric growth, narrow logs, mixed-dtype deltas
# ----------------------------------------------------------------------
class TestAnswerStatsGrowth:
    def test_log_starts_narrow(self):
        stats = AnswerStats(100, 10, 3)
        assert stats._obj.dtype == np.int32

    def test_reserve_growth_is_geometric(self):
        """The regression this PR's growth-policy audit exists to pin:
        every reallocation at least doubles capacity (>= the 1.5× floor a
        geometric policy needs), so A appends cost O(log A) reallocations
        — not the O(A²) copy cascade of a request-sized policy."""
        stats = AnswerStats(5000, 1, 2)
        capacities = [stats._obj.size]
        for i in range(5000):
            stats.add_answer(i, 0, 0)
            if stats._obj.size != capacities[-1]:
                capacities.append(stats._obj.size)
        assert len(capacities) <= int(np.log2(5000)) + 2
        for before, after in zip(capacities, capacities[1:]):
            assert after >= 1.5 * before
        assert all(after == 2 * before  # the exact policy, pinned
                   for before, after in zip(capacities, capacities[1:]))

    def test_bulk_load_reserves_once(self):
        stats = AnswerStats(4000, 2, 2)
        objects = np.arange(4000)
        stats.add_answers(objects, np.zeros(4000, dtype=np.int64),
                          np.zeros(4000, dtype=np.int64))
        assert stats.n_answers == 4000
        assert stats._obj.size >= 4000
        assert stats._obj.dtype == np.int32

    def test_mixed_dtype_deltas_land_in_the_narrow_log(self):
        """update_stats deltas arrive as whatever width the producer used
        (python ints, int64 triples, an int64-encoded EncodedAnswers);
        the maintained log stays narrow and the values stay exact."""
        stats = AnswerStats(50, 6, 2)
        em_kernel.update_stats(stats, [(0, 0, 1), (1, 1, 0)])
        em_kernel.update_stats(
            stats,
            zip(np.array([2, 3], dtype=np.int64),
                np.array([2, 3], dtype=np.int16),
                np.array([1, 1], dtype=np.uint8)))
        delta = em_kernel.EncodedAnswers(
            n_objects=50, n_workers=6, n_labels=2,
            object_index=np.array([4, 5], dtype=np.int64),
            worker_index=np.array([4, 5], dtype=np.int64),
            label_index=np.array([0, 1], dtype=np.int64),
        )
        em_kernel.update_stats(stats, delta)
        assert stats.n_answers == 6
        assert stats._obj.dtype == np.int32
        encoded = stats.encoded()
        assert encoded.object_index.tolist() == [0, 1, 2, 3, 4, 5]
        assert encoded.label_index.tolist() == [1, 0, 1, 1, 0, 1]

    def test_grow_widens_when_dimensions_outgrow_int32(self, monkeypatch):
        """Streams may grow past the bound the construction-time dtype was
        validated against. Exercised against a lowered bound — the real
        2³¹ boundary needs multi-GB aggregate arrays."""
        monkeypatch.setattr(em_kernel, "INT32_BOUND", 1000)
        stats = AnswerStats(10, 4, 2)
        assert stats._obj.dtype == np.int32  # 10·2 = 20 <= 1000
        stats.add_answer(3, 1, 1)
        stats.grow(n_objects=600)  # 600·2 = 1200 > 1000: must widen
        assert stats._obj.dtype == np.int64
        stats.add_answer(599, 0, 0)
        encoded = stats.encoded()
        assert encoded.object_index.tolist() == [3, 599]
        assert encoded.label_index.tolist() == [1, 0]


# ----------------------------------------------------------------------
# float32 accumulation path
# ----------------------------------------------------------------------
class TestFloat32Path:
    def test_m_step_float32_close_to_float64(self):
        encoded, assignment = random_encoding(8)
        plan = em_kernel.kernel_plan(encoded)
        f64 = em_kernel.m_step(encoded, assignment, 0.01, plan=plan)
        f32 = em_kernel.m_step(encoded, assignment.astype(np.float32),
                               0.01, plan=plan, dtype=np.float32)
        assert f32.dtype == np.float32
        np.testing.assert_allclose(f32, f64, rtol=1e-5, atol=1e-6)

    def test_m_step_float32_plan_matches_reference(self):
        encoded, assignment = random_encoding(9)
        assignment = assignment.astype(np.float32)
        planned = em_kernel.m_step(encoded, assignment, 0.01,
                                   plan=em_kernel.kernel_plan(encoded),
                                   dtype=np.float32)
        reference = em_kernel.m_step(encoded, assignment, 0.01,
                                     dtype=np.float32)
        np.testing.assert_allclose(planned, reference, rtol=1e-6)

    def test_run_em_float32_end_to_end(self):
        encoded, assignment = random_encoding(10)
        f64 = em_kernel.run_em(encoded, assignment,
                               np.array([0, 1]), np.array([1, 0]))
        f32 = em_kernel.run_em(encoded, assignment,
                               np.array([0, 1]), np.array([1, 0]),
                               dtype=np.float32)
        assert f32.assignment.dtype == np.float32
        assert f32.confusions.dtype == np.float32
        np.testing.assert_allclose(f32.assignment, f64.assignment,
                                   rtol=5e-3, atol=5e-3)
        agree = np.argmax(f32.assignment, 1) == np.argmax(f64.assignment, 1)
        assert agree.mean() >= 0.95

    def test_empty_encoding_float32(self):
        labels = ("a", "b")
        encoded = em_kernel.encode_answers(
            AnswerSet(np.full((3, 2), MISSING), labels))
        counts = em_kernel.m_step(encoded, np.full((3, 2), 0.5), 0.01,
                                  dtype=np.float32)
        assert counts.dtype == np.float32
        assert counts.shape == (2, 2, 2)


# ----------------------------------------------------------------------
# Shard-parallel M-step: bit-for-bit the serial plan path
# ----------------------------------------------------------------------
class TestShardedKernelBitEquality:
    @given(seed=st.integers(min_value=0, max_value=2**20),
           n_shards=st.integers(min_value=1, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_m_step_bit_equal_serial_executor(self, seed, n_shards):
        encoded, assignment = random_encoding(seed)
        plan = em_kernel.kernel_plan(encoded)
        serial = em_kernel.m_step(encoded, assignment, 0.01, plan=plan)
        with ShardedKernel(encoded, Executor("serial"),
                           n_shards=n_shards) as kernel:
            sharded = kernel.m_step(assignment, 0.01)
        np.testing.assert_array_equal(sharded, serial)

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=10, deadline=None)
    def test_e_step_bit_equal_serial_executor(self, seed):
        encoded, assignment = random_encoding(seed)
        plan = em_kernel.kernel_plan(encoded)
        confusions = em_kernel.m_step(encoded, assignment, 0.01, plan=plan)
        priors = em_kernel.estimate_priors(assignment)
        serial = em_kernel.e_step(encoded, confusions, priors, plan=plan)
        with ShardedKernel(encoded, Executor("serial"),
                           n_shards=3) as kernel:
            sharded = kernel.e_step(confusions, priors)
        np.testing.assert_array_equal(sharded, serial)

    def test_threads_executor_bit_equal(self):
        encoded, assignment = random_encoding(99, n=200, k=20)
        plan = em_kernel.kernel_plan(encoded)
        serial = em_kernel.m_step(encoded, assignment, 0.01, plan=plan)
        with ShardedKernel(encoded, Executor("threads", max_workers=3),
                           n_shards=5) as kernel:
            np.testing.assert_array_equal(kernel.m_step(assignment, 0.01),
                                          serial)

    def test_processes_run_em_parity(self):
        """The acceptance contract: run_em with a process-parallel M-step
        is bit-for-bit the serial solve — assignment, confusions, priors,
        and the iteration trajectory itself."""
        encoded, assignment = random_encoding(123, n=120, k=15)
        validated = np.array([0, 5, 9])
        labels = np.array([1, 0, 2])
        serial = em_kernel.run_em(encoded, assignment, validated, labels)
        parallel = em_kernel.run_em(encoded, assignment, validated, labels,
                                    parallel_m_step=2)
        np.testing.assert_array_equal(parallel.assignment, serial.assignment)
        np.testing.assert_array_equal(parallel.confusions, serial.confusions)
        np.testing.assert_array_equal(parallel.priors, serial.priors)
        assert parallel.n_iterations == serial.n_iterations
        assert parallel.converged == serial.converged

    def test_empty_encoding_delegates_to_serial(self):
        labels = ("a", "b")
        encoded = em_kernel.encode_answers(
            AnswerSet(np.full((4, 3), MISSING), labels))
        with ShardedKernel(encoded, Executor("serial")) as kernel:
            counts = kernel.m_step(np.full((4, 2), 0.5), 0.01)
        np.testing.assert_array_equal(
            counts, em_kernel.m_step(encoded, np.full((4, 2), 0.5), 0.01))

    def test_use_after_close_raises(self):
        encoded, assignment = random_encoding(11)
        kernel = ShardedKernel(encoded, Executor("serial"))
        kernel.close()
        with pytest.raises(RuntimeError):
            kernel.m_step(assignment, 0.01)


class TestRunEmParallelValidation:
    def test_requires_plan_path(self):
        encoded, assignment = random_encoding(12)
        with pytest.raises(ValueError, match="use_plan"):
            em_kernel.run_em(encoded, assignment, use_plan=False,
                             parallel_m_step=True)

    def test_requires_float64(self):
        encoded, assignment = random_encoding(13)
        with pytest.raises(ValueError, match="float64"):
            em_kernel.run_em(encoded, assignment, dtype=np.float32,
                             parallel_m_step=True)

    def test_rejects_foreign_encoding_kernel(self):
        encoded, assignment = random_encoding(14)
        other, _ = random_encoding(15)
        with ShardedKernel(other, Executor("serial")) as kernel:
            with pytest.raises(ValueError, match="different encoding"):
                em_kernel.run_em(encoded, assignment,
                                 parallel_m_step=kernel)

    def test_caller_supplied_kernel_stays_open(self):
        encoded, assignment = random_encoding(16)
        with ShardedKernel(encoded, Executor("serial")) as kernel:
            first = em_kernel.run_em(encoded, assignment,
                                     parallel_m_step=kernel)
            second = em_kernel.run_em(encoded, assignment,
                                      parallel_m_step=kernel)
        np.testing.assert_array_equal(first.assignment, second.assignment)


# ----------------------------------------------------------------------
# Narrowed checkpoints: new int32 segments, old int64 goldens
# ----------------------------------------------------------------------
class TestNarrowedCheckpointRoundTrip:
    def _session(self, seed: int = 21) -> ValidationSession:
        rng = np.random.default_rng(seed)
        matrix = np.where(rng.random((12, 5)) < 0.7,
                          rng.integers(0, 2, size=(12, 5)), MISSING)
        session = ValidationSession.from_answer_set(
            AnswerSet(matrix, ("a", "b")))
        session.add_validation(0, 1)
        session.add_validation(3, 0)
        session.conclude()
        return session

    def test_checkpoint_writes_narrow_segments(self, tmp_path):
        session = self._session()
        assert session.stats._obj.dtype == np.int32
        store = FileSessionStore(tmp_path)
        store.checkpoint(session, meta={"step": 0})
        seg = next((tmp_path / "ckpt-000000").glob("segment-*.npz"))
        with np.load(seg) as arrays:
            assert arrays["objects"].dtype == np.int32
            assert arrays["workers"].dtype == np.int32
            assert arrays["labels"].dtype == np.int32

    def test_narrowed_round_trip_is_bit_exact(self, tmp_path):
        session = self._session()
        store = FileSessionStore(tmp_path)
        store.checkpoint(session, meta={"step": 0})
        restored = store.restore().session
        np.testing.assert_array_equal(restored.model.assignment,
                                      session.model.assignment)
        np.testing.assert_array_equal(restored.stats.to_matrix(),
                                      session.stats.to_matrix())
        assert restored.stats._obj.dtype == np.int32

    def test_old_int64_golden_restores_into_a_narrowed_session(self):
        """The committed pre-narrowing checkpoint stores int64 segments;
        restore must ingest them transparently — the maintained log comes
        back narrow, and the pinned posterior is reproduced bit-exactly."""
        import json
        root = FIXTURES / "golden_checkpoint"
        with np.load(root / "store" / "ckpt-000000"
                     / "segment-000.npz") as seg:
            assert seg["objects"].dtype == np.int64  # genuinely old bytes
        expected = json.loads((root / "expected.json").read_text())
        session = FileSessionStore(root / "store").restore().session
        assert session.stats._obj.dtype == np.int32  # re-narrowed on ingest
        assert session.stats.n_answers == expected["n_answers"]
        assert np.argmax(session.model.assignment, axis=1).tolist() \
            == expected["map_labels"]
        assert session.rng.random() == pytest.approx(
            expected["next_uniform"], abs=0.0)
