"""Tests for validation-run reports and their curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.process.report import StepRecord, ValidationReport


def make_record(i: int, precision: float, effort: int,
                uncertainty: float = 1.0) -> StepRecord:
    return StepRecord(
        iteration=i, object_index=i - 1, expert_label=0,
        strategy="baseline", hybrid_weight=0.2, error_rate=0.3,
        spammer_ratio=0.1, n_suspected=0, uncertainty=uncertainty,
        precision=precision, effort=effort, em_iterations=2,
        elapsed_seconds=0.01)


@pytest.fixture
def report() -> ValidationReport:
    return ValidationReport(
        n_objects=10,
        initial_precision=0.6,
        initial_uncertainty=5.0,
        records=[
            make_record(1, 0.7, 1, 4.0),
            make_record(2, 0.8, 2, 3.0),
            make_record(3, 1.0, 4, 1.0),  # effort 4: confirmation re-elicits
        ],
        goal_reached=True,
    )


class TestCurves:
    def test_efforts_include_origin(self, report):
        assert report.efforts().tolist() == [0.0, 0.1, 0.2, 0.4]
        assert report.efforts(relative=False).tolist() == [0, 1, 2, 4]

    def test_precisions_and_uncertainties(self, report):
        assert report.precisions().tolist() == [0.6, 0.7, 0.8, 1.0]
        assert report.uncertainties().tolist() == [5.0, 4.0, 3.0, 1.0]

    def test_improvements(self, report):
        improvements = report.improvements()
        assert improvements[0] == pytest.approx(0.0)
        assert improvements[-1] == pytest.approx(1.0)
        assert improvements[1] == pytest.approx(0.25)

    def test_improvements_with_perfect_start(self):
        perfect = ValidationReport(n_objects=5, initial_precision=1.0,
                                   initial_uncertainty=0.0)
        assert np.all(perfect.improvements() == 1.0)

    def test_improvements_without_gold(self):
        nogold = ValidationReport(n_objects=5,
                                  initial_precision=float("nan"),
                                  initial_uncertainty=1.0,
                                  records=[make_record(1, float("nan"), 1)])
        assert np.all(np.isnan(nogold.improvements()))


class TestSummaries:
    def test_totals(self, report):
        assert report.total_effort == 4
        assert report.n_iterations == 3
        assert report.final_precision() == 1.0

    def test_effort_to_reach_precision(self, report):
        assert report.effort_to_reach_precision(0.8) == pytest.approx(0.2)
        assert report.effort_to_reach_precision(1.0) == pytest.approx(0.4)
        assert report.effort_to_reach_precision(0.5) == 0.0  # already there
        empty = ValidationReport(n_objects=5, initial_precision=0.5,
                                 initial_uncertainty=1.0)
        assert np.isnan(empty.effort_to_reach_precision(0.9))

    def test_precision_at_effort(self, report):
        assert report.precision_at_effort(0.0) == 0.6
        assert report.precision_at_effort(0.25) == 0.8
        assert report.precision_at_effort(1.0) == 1.0

    def test_strategy_usage(self, report):
        assert report.strategy_usage() == {"baseline": 3}

    def test_mean_step_seconds(self, report):
        assert report.mean_step_seconds() == pytest.approx(0.01)
        empty = ValidationReport(n_objects=5, initial_precision=0.5,
                                 initial_uncertainty=1.0)
        assert np.isnan(empty.mean_step_seconds())

    def test_to_csv(self, report):
        csv_text = report.to_csv()
        lines = csv_text.strip().splitlines()
        assert len(lines) == 4  # header + 3 records
        assert lines[0].startswith("iteration,object_index")

    def test_repr(self, report):
        assert "iterations=3" in repr(report)
