"""Differential end-to-end conformance for adversarial scenarios.

Two layers:

* the **registry matrix** — every registered scenario is executed by
  :class:`~repro.scenarios.ScenarioRunner` through the batch, streaming,
  and sharded execution paths under both guidance look-ahead modes, with
  the runner's cross-path agreement assertions armed;
* the **property layer** (hypothesis) — on randomly drawn small scenarios,
  batch and streaming posteriors must agree, and the kernel's
  ``use_plan=True/False`` paths must stay bit-for-bit equal under
  drift/collusion workloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import em_kernel
from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.guidance import LOOKAHEAD_MODES
from repro.scenarios import (
    PRODUCTION_SCALE,
    BurstySchedule,
    CollusionClique,
    ExpertSpec,
    PoissonSchedule,
    ReliabilityDrift,
    ScenarioRunner,
    ScenarioSpec,
    SleeperSpammer,
    compile_registered,
    compile_scenario,
    scenario_names,
)
from repro.streaming import ValidationSession

#: The workloads the acceptance criteria require, at minimum.
REQUIRED_SCENARIOS = ("reliability-drift", "sleeper-spammers",
                      "colluding-clique", "bursty-arrivals", "label-skew",
                      "fallible-expert", "worker-churn",
                      "duplicate-resubmissions")


# ----------------------------------------------------------------------
# Registry matrix: every scenario × every look-ahead, all three paths
# ----------------------------------------------------------------------
class TestRegistryMatrix:
    @pytest.fixture(scope="class")
    def runner(self) -> ScenarioRunner:
        return ScenarioRunner()

    def test_required_scenarios_registered(self):
        assert set(REQUIRED_SCENARIOS) <= set(scenario_names())

    @pytest.mark.parametrize("name", REQUIRED_SCENARIOS)
    @pytest.mark.parametrize("lookahead", LOOKAHEAD_MODES)
    def test_cross_path_agreement(self, runner, name, lookahead):
        """batch vs streaming vs sharded, tolerances enforced by check."""
        outcome = runner.run(compile_registered(name), lookahead)
        # The exact streaming replay feeds identical floats to the same
        # kernel: the divergence is not merely small, it is zero.
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0
        assert outcome.streaming_divergence.map_agreement == 1.0
        # Single-block sharded refresh is the same solve modulo cold-start
        # bookkeeping; MAP conclusions must be identical.
        assert outcome.sharded_divergence.map_agreement == 1.0

    @pytest.mark.parametrize("name", ["difficulty-strata"])
    def test_extra_registered_scenarios_also_conform(self, runner, name):
        outcome = runner.run(compile_registered(name), "exact")
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0

    def test_validation_helps_under_adversity(self, runner):
        """Guided validation must not leave precision below its start."""
        for name in ("colluding-clique", "sleeper-spammers"):
            outcome = runner.run(compile_registered(name), "exact")
            assert outcome.report.final_precision() \
                >= outcome.report.initial_precision

    def test_multi_block_sharded_is_a_documented_approximation(self):
        """Coarse partitions may move mass but keep conclusions sane."""
        runner = ScenarioRunner(max_objects_per_block=12)
        outcome = runner.run(compile_registered("colluding-clique"),
                             "exact", check=False)
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0
        assert outcome.sharded_divergence.map_agreement >= 0.9


# ----------------------------------------------------------------------
# Sharded multi-block: the regime where partitioning is near-exact
# ----------------------------------------------------------------------
class TestShardedMultiBlock:
    """The ``sharded-multiblock`` scenario: a block-diagonal answer matrix
    (four disjoint object/worker blocks) where the §5.4 independent-blocks
    approximation is exact up to the globally re-estimated priors."""

    @pytest.fixture(scope="class")
    def runner(self) -> ScenarioRunner:
        return ScenarioRunner()

    def test_answer_matrix_is_block_diagonal(self):
        """No worker answers outside their block — the structural premise
        the documented tolerance rests on."""
        compiled = compile_registered("sharded-multiblock")
        matrix = compiled.answer_set.matrix
        n_blocks = compiled.spec.n_blocks
        object_blocks = np.array_split(np.arange(compiled.n_objects),
                                       n_blocks)
        worker_blocks = np.array_split(np.arange(compiled.n_workers),
                                       n_blocks)
        for objs, workers in zip(object_blocks, worker_blocks):
            outside = np.setdiff1d(np.arange(compiled.n_workers), workers)
            assert (matrix[np.ix_(objs, outside)] < 0).all()
        # Inside the blocks the scenario is genuinely sparse, not dense.
        assert compiled.answer_set.n_answers \
            == compiled.n_objects * compiled.spec.answers_per_object

    @pytest.mark.parametrize("lookahead", LOOKAHEAD_MODES)
    def test_all_five_paths_agree_single_block(self, runner, lookahead):
        """Default (single-block) runner: all five paths, exact layers at
        zero, sharded MAP conclusions identical."""
        outcome = runner.run(compile_registered("sharded-multiblock"),
                             lookahead)
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0
        assert outcome.resume_divergence.max_abs_posterior_gap == 0.0
        assert outcome.fault_divergence.max_abs_posterior_gap == 0.0
        assert outcome.n_faults_fired > 0
        assert outcome.sharded_divergence.map_agreement == 1.0

    def test_block_aligned_partition_is_near_exact(self):
        """Partitioning at the true block granularity (12 objects per
        block = the scenario's 4 blocks exactly): the only divergence
        left is the globally re-estimated priors, so the posterior gap is
        small (documented tolerance 0.08; measured ≈0.053) and not a
        single MAP conclusion flips — much tighter than the generic
        ``sharded_atol``/MAP tolerance coarse partitions are held to."""
        runner = ScenarioRunner(max_objects_per_block=12)
        outcome = runner.run(compile_registered("sharded-multiblock"),
                             "exact", check=False)
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0
        assert outcome.sharded_divergence.max_abs_posterior_gap <= 0.08
        assert outcome.sharded_divergence.map_agreement == 1.0


# ----------------------------------------------------------------------
# Property layer
# ----------------------------------------------------------------------
def _behavior_strategy():
    return st.sampled_from([
        (),
        (ReliabilityDrift(fraction=0.5, start_accuracy=0.9,
                          end_accuracy=0.3),),
        (SleeperSpammer(fraction=0.4, honest_answers=2),),
        (CollusionClique(size=3, copy_probability=0.9),),
        (SleeperSpammer(fraction=0.3, honest_answers=3),
         CollusionClique(size=3, copy_probability=1.0)),
    ])


small_scenarios = st.builds(
    lambda n, k, m, behaviors, schedule, mistake, seed: ScenarioSpec(
        name="prop",
        n_objects=n, n_workers=k, n_labels=m,
        answers_per_object=min(4, k),
        behaviors=behaviors,
        schedule=schedule,
        expert=ExpertSpec(mistake_probability=mistake,
                          n_validations=max(2, n // 3)),
        seed=seed,
    ),
    n=st.integers(min_value=6, max_value=14),
    k=st.integers(min_value=4, max_value=8),
    m=st.integers(min_value=2, max_value=3),
    behaviors=_behavior_strategy(),
    schedule=st.sampled_from([PoissonSchedule(rate=50.0),
                              BurstySchedule(rate=50.0, burst_size=8)]),
    mistake=st.sampled_from([0.0, 0.2]),
    seed=st.integers(min_value=0, max_value=2**20),
)


class TestScenarioProperties:
    @given(spec=small_scenarios)
    @settings(max_examples=20, deadline=None)
    def test_batch_and_streaming_posteriors_agree(self, spec):
        """The view-maintenance contract holds on arbitrary workloads."""
        compiled = compile_scenario(spec)
        validations = {e.object_index: e.label
                       for e in compiled.validation_events}

        batch_validation = ExpertValidation.from_mapping(
            validations, compiled.n_objects, compiled.n_labels)
        batch = IncrementalEM().conclude(compiled.answer_set,
                                         batch_validation)

        session = ValidationSession.from_answer_set(compiled.answer_set)
        for obj, label in validations.items():
            session.add_validation(obj, label, overwrite=True)
        result = session.conclude()

        np.testing.assert_array_equal(batch.assignment, result.assignment)
        np.testing.assert_array_equal(batch.priors, result.priors)

    @given(spec=small_scenarios)
    @settings(max_examples=20, deadline=None)
    def test_kernel_plan_paths_bit_equal(self, spec):
        """use_plan=True/False must match bit for bit on scenario data."""
        compiled = compile_scenario(spec)
        encoded = em_kernel.encode_answers(compiled.answer_set)
        initial = em_kernel.initial_assignment_majority(encoded)
        validations = {e.object_index: e.label
                       for e in compiled.validation_events}
        validated = np.array(sorted(validations), dtype=np.int64)
        labels = np.array([validations[i] for i in validated],
                          dtype=np.int64)
        fast = em_kernel.run_em(encoded, initial, validated, labels,
                                use_plan=True)
        reference = em_kernel.run_em(encoded, initial, validated, labels,
                                     use_plan=False)
        np.testing.assert_array_equal(fast.assignment, reference.assignment)
        np.testing.assert_array_equal(fast.confusions, reference.confusions)
        np.testing.assert_array_equal(fast.priors, reference.priors)
        assert fast.n_iterations == reference.n_iterations

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=15, deadline=None)
    def test_compile_is_replayable_from_one_seed(self, seed):
        spec = ScenarioSpec(
            name="prop", n_objects=8, n_workers=5,
            behaviors=(SleeperSpammer(fraction=0.5, honest_answers=2),),
            seed=0)
        a = compile_scenario(spec, seed=seed)
        b = compile_scenario(spec, seed=seed)
        assert np.array_equal(a.answer_set.matrix, b.answer_set.matrix)
        assert a.answer_events == b.answer_events
        assert a.validation_events == b.validation_events


class TestTimedReplayCadence:
    """The stream view under a wall-clock refresh cadence: this is where
    arrival *timing* (not just content) becomes load-bearing."""

    def _drain(self, compiled, **replay_kwargs):
        from repro.simulation.stream import replay
        session = ValidationSession(1, 1, compiled.n_labels)
        summary = replay(compiled.events(), session, **replay_kwargs)
        return session, summary

    def test_bursty_timing_changes_refresh_cadence(self):
        """Same spec, bursty vs Poisson arrivals: under a timer-driven
        cadence the burst structure concentrates events into fewer
        refinements per event — the property the scenario exists to
        stress, invisible to event-count cadences."""
        import dataclasses
        from repro.scenarios import get_scenario
        bursty_spec = get_scenario("bursty-arrivals")
        poisson_spec = dataclasses.replace(
            bursty_spec, schedule=PoissonSchedule(rate=200.0))
        bursty = compile_scenario(bursty_spec)
        poisson = compile_scenario(poisson_spec)
        # Identical content (timing is an independent seed stream)...
        np.testing.assert_array_equal(bursty.answer_set.matrix,
                                      poisson.answer_set.matrix)
        interval = bursty.answer_events[-1].time / 20.0
        _, bursty_summary = self._drain(
            bursty, conclude_every_seconds=interval)
        _, poisson_summary = self._drain(
            poisson,
            conclude_every_seconds=poisson.answer_events[-1].time / 20.0)
        # ...but bursty time concentrates events into lulls and bursts, so
        # the timer fires on fewer distinct intervals than smooth Poisson.
        assert bursty_summary.n_concludes < poisson_summary.n_concludes

    def test_timed_replay_drains_to_batch_posteriors(self):
        """After the stream drains, the session's *data* is exactly the
        batch problem: a cold re-conclude over the drained state matches
        the batch solve bit for bit. The warm drained model itself may sit
        in a different EM basin (warm starts from partial-burst models are
        a different trajectory than one cold solve — that conditionality
        is the documented contract since the streaming engine landed), so
        it is held to MAP-agreement bounds, not bit-equality."""
        compiled = compile_registered("bursty-arrivals")
        interval = compiled.answer_events[-1].time / 10.0
        session, summary = self._drain(
            compiled, conclude_every_seconds=interval)
        assert summary.n_concludes > 1  # cadence actually fired mid-stream

        validations = {e.object_index: e.label
                       for e in compiled.validation_events}
        batch_validation = ExpertValidation.from_mapping(
            validations, compiled.n_objects, compiled.n_labels)
        batch = IncrementalEM().conclude(compiled.answer_set,
                                         batch_validation)

        # Exact layer: drained data == batch data, solved cold.
        np.testing.assert_array_equal(session.answer_set.matrix,
                                      compiled.answer_set.matrix)
        cold = ValidationSession.from_answer_set(session.answer_set)
        for obj, label in validations.items():
            cold.add_validation(obj, label, overwrite=True)
        np.testing.assert_array_equal(cold.conclude().assignment,
                                      batch.assignment)

        # Approximation layer: the warm drained model's conclusions.
        streamed = session.model.assignment
        agreement = np.mean(np.argmax(streamed, axis=1)
                            == np.argmax(batch.assignment, axis=1))
        assert agreement >= 0.75

    def test_composed_same_class_behaviors_report_union(self):
        """Two sleeper cohorts: behavior_workers reports both."""
        spec = ScenarioSpec(
            name="two-cohorts", n_objects=20, n_workers=10,
            behaviors=(SleeperSpammer(fraction=0.2, honest_answers=2),
                       SleeperSpammer(fraction=0.2, honest_answers=6)),
            seed=31)
        compiled = compile_scenario(spec)
        governed = compiled.behavior_workers["sleeper_spammer"]
        assert len(governed) >= 2
        assert set(np.flatnonzero(compiled.true_spammer_mask)) \
            >= set(governed)


class TestWorkerChurn:
    """The worker-churn scenario: generational arrival, grow cold-start."""

    def test_arrivals_group_into_generations(self):
        """Merging per-worker arrival-position intervals yields exactly
        the configured number of generations: cohorts overlap internally
        but never across the generation boundary."""
        compiled = compile_registered("worker-churn")
        positions: dict[int, list[int]] = {}
        for pos, event in enumerate(compiled.answer_events):
            interval = positions.setdefault(event.worker_index, [pos, pos])
            interval[1] = pos
        merged = 0
        previous_end = -1
        for start, end in sorted(positions.values()):
            if start > previous_end:
                merged += 1
            previous_end = max(previous_end, end)
        assert merged == compiled.spec.behaviors[0].generations

    def test_same_cells_as_churn_free_compile(self):
        """Churn permutes arrival order only — the set of answered cells
        (the sparsity mask) matches the same spec compiled without the
        behavior. Labels themselves may differ: they are drawn from one
        stream in arrival order, so the permutation re-deals the draws."""
        import dataclasses
        spec = compile_registered("worker-churn").spec
        churn_free = dataclasses.replace(spec, behaviors=())
        churned = compile_scenario(spec).answer_set.matrix
        baseline = compile_scenario(churn_free).answer_set.matrix
        np.testing.assert_array_equal(churned >= 0, baseline >= 0)

    def test_grow_cold_start_drains_to_batch(self):
        """A 1×1 session grown answer-by-answer through churn arrivals
        holds exactly the batch data, and a conclude over it matches the
        batch solve bit for bit (batch↔streaming conformance under
        churn)."""
        from repro.simulation.stream import replay
        compiled = compile_registered("worker-churn")
        session = ValidationSession(1, 1, compiled.n_labels)
        replay(compiled.events(), session,
               conclude_every=len(compiled.answer_events) // 4)
        grown = session.answer_set.matrix[:compiled.n_objects,
                                          :compiled.n_workers]
        np.testing.assert_array_equal(grown, compiled.answer_set.matrix)

        validations = {e.object_index: e.label
                       for e in compiled.validation_events}
        batch_validation = ExpertValidation.from_mapping(
            validations, compiled.n_objects, compiled.n_labels)
        batch = IncrementalEM().conclude(compiled.answer_set,
                                         batch_validation)
        cold = ValidationSession.from_answer_set(compiled.answer_set)
        for obj, label in validations.items():
            cold.add_validation(obj, label, overwrite=True)
        np.testing.assert_array_equal(cold.conclude().assignment,
                                      batch.assignment)


class TestDuplicateResubmissions:
    """The duplicate-resubmissions scenario pins the conflict policy."""

    def test_resubmissions_are_stream_only_first_write_wins(self):
        compiled = compile_registered("duplicate-resubmissions")
        extra = len(compiled.answer_events) - compiled.answer_set.n_answers
        assert extra > 0  # the behavior actually fired
        # The batch matrix holds the FIRST submission of every cell.
        first_seen: dict[tuple[int, int], int] = {}
        for event in compiled.answer_events:
            first_seen.setdefault(
                (event.object_index, event.worker_index), event.label)
        for (i, j), label in first_seen.items():
            assert compiled.answer_set.matrix[i, j] == label

    def test_default_policy_rejects_conflicts(self):
        """on_conflict='error' (the default): the first conflicting
        resubmission raises — last-write-wins is not on offer."""
        from repro.errors import InvalidAnswerSetError
        from repro.simulation.stream import replay
        compiled = compile_registered("duplicate-resubmissions")
        session = ValidationSession(1, 1, compiled.n_labels)
        with pytest.raises(InvalidAnswerSetError):
            replay(compiled.events(), session)

    def test_ignore_policy_drops_conflicts_and_matches_batch(self):
        """on_conflict='ignore': conflicts are dropped (and counted), the
        drained data equals the batch view bit for bit, and a cold solve
        over it matches the batch solve bit for bit (the drained warm
        model itself is a different trajectory — the documented streaming
        contract)."""
        from repro.simulation.stream import replay
        compiled = compile_registered("duplicate-resubmissions")
        session = ValidationSession(1, 1, compiled.n_labels)
        summary = replay(compiled.events(), session, on_conflict="ignore")
        assert summary.n_answers == len(compiled.answer_events)
        assert session.n_conflicts > 0
        drained = session.answer_set.matrix[:compiled.n_objects,
                                            :compiled.n_workers]
        np.testing.assert_array_equal(drained, compiled.answer_set.matrix)

        validations = {e.object_index: e.label
                       for e in compiled.validation_events}
        batch_validation = ExpertValidation.from_mapping(
            validations, compiled.n_objects, compiled.n_labels)
        batch = IncrementalEM().conclude(compiled.answer_set,
                                         batch_validation)
        cold = ValidationSession.from_answer_set(session.answer_set)
        for obj, label in validations.items():
            cold.add_validation(obj, label, overwrite=True)
        np.testing.assert_array_equal(cold.conclude().assignment,
                                      batch.assignment)

    def test_exact_duplicates_are_free_under_both_policies(self):
        """A re-sent identical answer is a no-op everywhere: it neither
        raises under 'error' nor bumps n_conflicts under 'ignore'."""
        session = ValidationSession(4, 3, 2)
        session.add_answer(0, 0, 1)
        assert session.add_answer(0, 0, 1) is False  # error policy: fine
        assert session.add_answer(0, 0, 1, on_conflict="ignore") is False
        assert session.n_conflicts == 0


@pytest.mark.slow
class TestFullMatrixSlow:
    """The exhaustive matrix (every scenario × mode), kept out of the CI
    scenarios job's -m "not slow" selection."""

    def test_full_registry_matrix(self):
        runner = ScenarioRunner()
        outcomes = runner.run_matrix(
            (compile_registered(name) for name in scenario_names()))
        assert len(outcomes) == len(scenario_names()) * len(LOOKAHEAD_MODES)
        for outcome in outcomes:
            assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0


@pytest.mark.slow
class TestProductionScaleSlow:
    """:data:`~repro.scenarios.PRODUCTION_SCALE` (n=5 000, k=500, 25
    disjoint blocks, 30 000 answers) through all five runner paths — the
    production-size sharded workload the every-PR sweeps deliberately skip.
    CI runs this behind the nightly/manual ``-m slow`` trigger."""

    def test_stays_out_of_the_registry(self):
        """The spec must NOT be registered: the chaos and full-matrix
        sweeps parametrize over :func:`scenario_names` and would drag a
        minutes-long workload into every PR."""
        assert PRODUCTION_SCALE.name not in scenario_names()

    def test_production_scale_all_five_paths(self):
        compiled = compile_scenario(PRODUCTION_SCALE)
        assert compiled.answer_set.n_answers \
            == PRODUCTION_SCALE.n_objects * PRODUCTION_SCALE.answers_per_object
        # Partition at the true block granularity (5 000 / 25 = 200).
        runner = ScenarioRunner(max_objects_per_block=200)
        outcome = runner.run(compiled, "local", check=False)
        # Exact layers stay exact at production size.
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0
        assert outcome.resume_divergence.max_abs_posterior_gap == 0.0
        assert outcome.fault_divergence.max_abs_posterior_gap == 0.0
        assert outcome.n_faults_fired > 0
        # The sharded path solves 25 independent blocks; with only 12
        # expert anchors over 25 blocks, unanchored blocks may settle in
        # a flipped per-block basin, so the contract is MAP-level, not
        # posterior-level (measured agreement 0.950).
        assert outcome.sharded_divergence.map_agreement >= 0.9
        # Guided validation still helps at scale.
        assert outcome.report.final_precision() \
            >= outcome.report.initial_precision
