"""Unit tests for the adversarial scenario subsystem (repro.scenarios)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answer_set import MISSING
from repro.errors import DatasetError
from repro.scenarios import (
    BurstySchedule,
    CollusionClique,
    ExpertSpec,
    PoissonSchedule,
    ReliabilityDrift,
    ScenarioSpec,
    SleeperSpammer,
    compile_registered,
    compile_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.registry import SCENARIO_REGISTRY
from repro.simulation.stream import replay
from repro.streaming import ValidationSession
from repro.workers.types import WorkerType


class TestSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(DatasetError):
            ScenarioSpec(name="")

    def test_rejects_bad_strata(self):
        with pytest.raises(DatasetError):
            ScenarioSpec(name="x", difficulty_strata=((-0.5, 0.2),))

    def test_budget_defaults_to_half(self):
        assert ScenarioSpec(name="x", n_objects=30).budget == 15

    def test_budget_capped_by_objects(self):
        spec = ScenarioSpec(name="x", n_objects=10,
                            expert=ExpertSpec(n_validations=99))
        assert spec.budget == 10

    def test_with_seed_and_size(self):
        spec = ScenarioSpec(name="x", n_objects=30, seed=1)
        resized = spec.with_size(n_objects=8, n_workers=5).with_seed(9)
        assert (resized.n_objects, resized.n_workers, resized.seed) == (8, 5, 9)
        assert spec.seed == 1  # original untouched


class TestCompiler:
    def test_same_seed_bit_identical(self):
        spec = get_scenario("sleeper-spammers")
        a, b = compile_scenario(spec), compile_scenario(spec)
        assert np.array_equal(a.answer_set.matrix, b.answer_set.matrix)
        assert np.array_equal(a.gold, b.gold)
        assert np.array_equal(a.expert_labels, b.expert_labels)
        assert a.answer_events == b.answer_events
        assert a.validation_events == b.validation_events

    def test_different_seed_differs(self):
        spec = get_scenario("sleeper-spammers")
        a = compile_scenario(spec)
        b = compile_scenario(spec, seed=spec.seed + 1)
        assert not np.array_equal(a.answer_set.matrix, b.answer_set.matrix)

    def test_events_cover_matrix_exactly(self):
        compiled = compile_registered("colluding-clique")
        matrix = compiled.answer_set.matrix
        assert len(compiled.answer_events) == compiled.answer_set.n_answers
        for event in compiled.answer_events:
            assert matrix[event.object_index, event.worker_index] \
                == event.label

    def test_event_times_strictly_ordered_per_stream(self):
        compiled = compile_registered("bursty-arrivals")
        times = [e.time for e in compiled.answer_events]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_label_skew_respected(self):
        compiled = compile_registered("label-skew")
        majority_share = float(np.mean(compiled.gold == 0))
        assert majority_share > 0.7  # priors are (0.85, 0.15)

    def test_difficulty_strata_assignment(self):
        compiled = compile_registered("difficulty-strata")
        values, counts = np.unique(compiled.difficulty, return_counts=True)
        assert set(values) == {0.05, 0.35, 0.7}
        assert counts.sum() == compiled.n_objects

    def test_fallible_expert_sheet_deviates_from_gold(self):
        compiled = compile_registered("fallible-expert")
        mistakes = compiled.expert_mistake_indices()
        assert mistakes.size > 0
        agree = np.mean(compiled.expert_labels == compiled.gold)
        assert agree > 0.6  # slips are the exception, not the rule

    def test_oracle_expert_sheet_matches_gold(self):
        compiled = compile_registered("colluding-clique")
        assert np.array_equal(compiled.expert_labels, compiled.gold)

    def test_as_crowd_adapter(self):
        compiled = compile_registered("reliability-drift")
        crowd = compiled.as_crowd()
        assert crowd.answer_set is compiled.answer_set
        assert crowd.true_confusions.shape == (
            compiled.n_workers, compiled.n_labels, compiled.n_labels)

    def test_stream_replay_reaches_batch_answer_set(self):
        """Replaying the compiled events reconstructs the batch matrix."""
        compiled = compile_registered("sleeper-spammers")
        session = ValidationSession(1, 1, compiled.n_labels)
        replay(compiled.events(), session)
        assert np.array_equal(
            session.answer_set.matrix, compiled.answer_set.matrix)
        validated = {e.object_index for e in compiled.validation_events}
        assert session.n_validated == len(validated)


class TestBehaviors:
    def _compile(self, behavior, seed=5, **kwargs):
        kwargs = {"n_objects": 30, "n_workers": 10, **kwargs}
        spec = ScenarioSpec(
            name="unit", reliability=0.85,
            population={WorkerType.NORMAL: 1.0},
            behaviors=(behavior,), seed=seed, **kwargs)
        return compile_scenario(spec)

    def test_sleeper_turns_after_honest_phase(self):
        compiled = self._compile(
            SleeperSpammer(fraction=0.4, honest_answers=3))
        sleepers = compiled.behavior_workers["sleeper_spammer"]
        assert sleepers
        events_of = {w: [] for w in sleepers}
        for event in compiled.answer_events:
            if event.worker_index in events_of:
                events_of[event.worker_index].append(event.label)
        for worker, labels in events_of.items():
            spam_phase = labels[3:]
            # uniform mode: a single pet label after the turn
            assert len(set(spam_phase)) == 1
        assert compiled.true_spammer_mask[list(sleepers)].all()

    def test_collusion_copies_leader(self):
        behavior = CollusionClique(size=4, copy_probability=1.0)
        compiled = self._compile(behavior)
        clique = compiled.behavior_workers["collusion_clique"]
        assert len(clique) == 4
        matrix = compiled.answer_set.matrix
        leader = clique[0]
        for follower in clique[1:]:
            both = (matrix[:, leader] != MISSING) \
                & (matrix[:, follower] != MISSING)
            assert np.array_equal(matrix[both, leader],
                                  matrix[both, follower])
        assert compiled.true_spammer_mask[list(clique)].all()

    def test_drift_degrades_late_answers(self):
        compiled = self._compile(
            ReliabilityDrift(fraction=1.0, start_accuracy=0.95,
                             end_accuracy=0.05),
            n_objects=60, n_workers=8)
        drifters = compiled.behavior_workers["reliability_drift"]
        assert drifters
        # drifting workers are degraded, not adversarial
        assert not compiled.true_faulty_mask[list(drifters)].any()
        correct_early, correct_late, ordinal = [], [], {}
        for event in compiled.answer_events:
            w = event.worker_index
            if w not in drifters:
                continue
            a = ordinal.get(w, 0)
            ordinal[w] = a + 1
            hit = event.label == compiled.gold[event.object_index]
            (correct_early if a < 20 else correct_late).append(hit)
        assert np.mean(correct_early) > np.mean(correct_late) + 0.2

    def test_bursty_schedule_has_heavier_tail_than_poisson(self):
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        poisson = np.diff(PoissonSchedule(rate=100.0).times(2000, rng_a))
        bursty = np.diff(
            BurstySchedule(rate=100.0, burst_size=20, alpha=1.2).times(
                2000, rng_b))
        assert bursty.max() > poisson.max() * 5
        assert np.median(bursty) < np.percentile(bursty, 99) / 10

    def test_zero_fraction_governs_no_workers(self):
        """fraction=0.0 is a clean control arm, not a one-worker floor."""
        compiled = self._compile(ReliabilityDrift(fraction=0.0))
        assert compiled.behavior_workers["reliability_drift"] == ()
        baseline = compile_scenario(ScenarioSpec(
            name="unit", n_objects=30, n_workers=10, reliability=0.85,
            population={WorkerType.NORMAL: 1.0}, seed=5))
        np.testing.assert_array_equal(
            compiled.answer_set.matrix, baseline.answer_set.matrix)

    def test_drift_respects_difficulty(self):
        """Honest drifters still guess on maximally hard questions."""
        easy = self._compile(
            ReliabilityDrift(fraction=1.0, start_accuracy=0.95,
                             end_accuracy=0.95),
            n_objects=80, n_workers=6)
        hard = self._compile(
            ReliabilityDrift(fraction=1.0, start_accuracy=0.95,
                             end_accuracy=0.95),
            n_objects=80, n_workers=6,
            difficulty_strata=((1.0, 1.0),))
        def accuracy(compiled):
            matrix = compiled.answer_set.matrix
            answered = matrix != MISSING
            hits = matrix == compiled.gold[:, None]
            return np.mean(hits[answered])
        assert accuracy(easy) > 0.85
        assert abs(accuracy(hard) - 0.5) < 0.15  # binary: chance level

    def test_zero_eligible_workers_is_harmless(self):
        spec = ScenarioSpec(
            name="unit", n_objects=10, n_workers=4,
            population={WorkerType.RANDOM_SPAMMER: 1.0},
            behaviors=(SleeperSpammer(fraction=0.5),), seed=2)
        compiled = compile_scenario(spec)
        assert compiled.behavior_workers["sleeper_spammer"] == ()


class TestRegistry:
    REQUIRED = {"reliability-drift", "sleeper-spammers", "colluding-clique",
                "bursty-arrivals", "label-skew", "fallible-expert"}

    def test_builtin_coverage(self):
        assert self.REQUIRED <= set(scenario_names())
        assert len(scenario_names()) >= 6

    def test_get_unknown_raises(self):
        with pytest.raises(DatasetError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("label-skew")
        with pytest.raises(DatasetError, match="already registered"):
            register_scenario(spec)
        register_scenario(spec, replace=True)  # explicit replace is fine
        assert SCENARIO_REGISTRY["label-skew"] is spec

    def test_compile_registered_matches_spec_seed(self):
        compiled = compile_registered("bursty-arrivals")
        assert compiled.seed == get_scenario("bursty-arrivals").seed
