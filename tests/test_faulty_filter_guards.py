"""Tests for the faulty-worker masking guards (persistence, scope, cap).

These guards are the engineering deviations documented in DESIGN.md and
EXPERIMENTS.md (D1); each is pinned here so a regression that silently
reverts to the collapse-prone raw behaviour is caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.process.faulty_filter import FaultyWorkerFilter
from repro.workers.spammer_detection import DetectionResult


def detection(spammer=(), sloppy=(), n_workers=10,
              scores=None) -> DetectionResult:
    spammer_mask = np.zeros(n_workers, dtype=bool)
    spammer_mask[list(spammer)] = True
    sloppy_mask = np.zeros(n_workers, dtype=bool)
    sloppy_mask[list(sloppy)] = True
    if scores is None:
        scores = np.where(spammer_mask, 0.05, 1.0)
    return DetectionResult(
        spammer_scores=np.asarray(scores, dtype=float),
        error_rates=np.where(sloppy_mask, 0.9, 0.1),
        evidence=np.full(n_workers, 5),
        spammer_mask=spammer_mask,
        sloppy_mask=sloppy_mask,
    )


class TestPersistence:
    def test_single_flag_does_not_mask(self):
        filt = FaultyWorkerFilter(persistence=3)
        filt.observe(detection(spammer=[2]))
        assert filt.commit() == frozenset()

    def test_consecutive_flags_mask(self):
        filt = FaultyWorkerFilter(persistence=3)
        for _ in range(3):
            filt.observe(detection(spammer=[2]))
        assert filt.commit() == frozenset({2})

    def test_broken_streak_resets(self):
        filt = FaultyWorkerFilter(persistence=2)
        filt.observe(detection(spammer=[2]))
        filt.observe(detection(spammer=[]))   # streak broken
        filt.observe(detection(spammer=[2]))
        assert filt.commit() == frozenset()

    def test_invalid_persistence(self):
        with pytest.raises(ValueError):
            FaultyWorkerFilter(persistence=0)


class TestScope:
    def test_default_scope_ignores_sloppy(self):
        filt = FaultyWorkerFilter(persistence=1)
        filt.observe(detection(spammer=[1], sloppy=[4]))
        assert filt.commit() == frozenset({1})

    def test_faulty_scope_includes_sloppy(self):
        filt = FaultyWorkerFilter(persistence=1)
        filt.observe(detection(spammer=[1], sloppy=[4]), scope="faulty")
        assert filt.commit() == frozenset({1, 4})

    def test_unknown_scope_rejected(self):
        filt = FaultyWorkerFilter()
        with pytest.raises(ValueError, match="scope"):
            filt.observe(detection(), scope="bogus")


class TestCap:
    def test_cap_prefers_lowest_scores(self):
        filt = FaultyWorkerFilter(persistence=1, max_masked_fraction=0.2)
        scores = np.ones(10)
        scores[[3, 7, 8]] = (0.01, 0.15, 0.19)  # 3 flagged, cap allows 2
        filt.observe(detection(spammer=[3, 7, 8], scores=scores))
        assert filt.commit() == frozenset({3, 7})

    def test_cap_never_rounds_to_zero(self):
        filt = FaultyWorkerFilter(persistence=1, max_masked_fraction=0.2)
        filt.observe(detection(spammer=[0], n_workers=2,
                               scores=np.array([0.0, 1.0])))
        assert filt.commit() == frozenset({0})

    def test_cap_disabled_at_one(self):
        filt = FaultyWorkerFilter(persistence=1, max_masked_fraction=1.0)
        filt.observe(detection(spammer=[0, 1, 2, 3, 4, 5]))
        assert filt.commit() == frozenset({0, 1, 2, 3, 4, 5})

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FaultyWorkerFilter(max_masked_fraction=1.5)


class TestClear:
    def test_clear_resets_streaks_and_suspects(self):
        filt = FaultyWorkerFilter(persistence=1)
        filt.observe(detection(spammer=[1]))
        filt.commit()
        filt.clear()
        assert filt.suspected == frozenset()
        filt.observe(detection(spammer=[]))
        assert filt.commit() == frozenset()
