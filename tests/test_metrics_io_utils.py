"""Tests for metrics, file I/O, utility helpers, and joint entropy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError, InvalidProbabilityError
from repro.io import (
    load_answer_files,
    read_gold_file,
    read_response_file,
    write_gold_file,
    write_response_file,
)
from repro.metrics import (
    area_under_curve,
    average_curves,
    interpolate_curve,
    precision,
    precision_improvement,
    relative_effort,
    uncertainty_precision_correlation,
)
from repro.utils import (
    check_distribution,
    check_fraction,
    check_positive,
    check_positive_int,
    check_row_stochastic,
    ensure_rng,
    split_rng,
)


class TestMetrics:
    def test_precision(self):
        assert precision(np.array([0, 1, 1]), np.array([0, 1, 0])) == \
            pytest.approx(2 / 3)
        assert precision(np.array([]), np.array([])) == 1.0
        with pytest.raises(ValueError):
            precision(np.array([0]), np.array([0, 1]))

    def test_precision_improvement(self):
        assert precision_improvement(0.9, 0.8) == pytest.approx(0.5)
        assert precision_improvement(0.8, 0.8) == 0.0
        assert precision_improvement(1.0, 1.0) == 1.0
        with pytest.raises(ValueError):
            precision_improvement(1.2, 0.5)

    def test_relative_effort(self):
        assert relative_effort(20, 100) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            relative_effort(1, 0)

    def test_correlation_strongly_negative(self):
        uncertainty = np.linspace(1.0, 0.0, 20)
        prec = np.linspace(0.5, 1.0, 20)
        corr = uncertainty_precision_correlation(uncertainty, prec)
        assert corr == pytest.approx(-1.0)

    def test_correlation_degenerate_inputs(self):
        assert np.isnan(uncertainty_precision_correlation(
            np.array([1.0]), np.array([1.0])))
        assert np.isnan(uncertainty_precision_correlation(
            np.ones(5), np.linspace(0, 1, 5)))

    def test_interpolate_step_curve(self):
        efforts = np.array([0.0, 0.5, 1.0])
        values = np.array([0.2, 0.6, 0.9])
        grid = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        out = interpolate_curve(efforts, values, grid)
        assert out.tolist() == [0.2, 0.2, 0.6, 0.6, 0.9]

    def test_average_curves(self):
        grid = np.array([0.0, 1.0])
        curves = [(np.array([0.0, 1.0]), np.array([0.0, 1.0])),
                  (np.array([0.0, 1.0]), np.array([1.0, 0.0]))]
        assert average_curves(curves, grid).tolist() == [0.5, 0.5]
        with pytest.raises(ValueError):
            average_curves([], grid)

    def test_area_under_curve(self):
        assert area_under_curve(np.array([0.0, 1.0]),
                                np.array([1.0, 1.0])) == pytest.approx(1.0)
        assert np.isnan(area_under_curve(np.array([0.0]), np.array([1.0])))


class TestTripleIO:
    def test_round_trip(self, tmp_path, small_crowd):
        response = tmp_path / "answers.tsv"
        gold_file = tmp_path / "gold.tsv"
        write_response_file(response, small_crowd.answer_set)
        write_gold_file(gold_file, small_crowd.answer_set, small_crowd.gold)
        answers, gold = load_answer_files(response, gold_file)
        assert answers.n_answers == small_crowd.answer_set.n_answers
        assert gold is not None
        # same labelling up to vocabulary order
        for i, obj in enumerate(answers.objects):
            original = small_crowd.answer_set.object_index(obj)
            assert answers.labels[gold[i]] == \
                small_crowd.answer_set.labels[small_crowd.gold[original]]

    def test_response_only(self, tmp_path):
        path = tmp_path / "r.tsv"
        path.write_text("o1\tw1\tyes\no2\tw1\tno\n")
        answers, gold = load_answer_files(path)
        assert gold is None
        assert answers.n_objects == 2

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "r.tsv"
        path.write_text("# header\n\no1\tw1\tyes\n")
        assert read_response_file(path) == [("o1", "w1", "yes")]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "r.tsv"
        path.write_text("o1\tw1\n")
        with pytest.raises(DatasetError, match="expected 3 fields"):
            read_response_file(path)

    def test_conflicting_gold_rejected(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("o1\tyes\no1\tno\n")
        with pytest.raises(DatasetError, match="conflicting"):
            read_gold_file(path)

    def test_gold_for_unknown_object_rejected(self, tmp_path):
        response = tmp_path / "r.tsv"
        gold_file = tmp_path / "g.tsv"
        response.write_text("o1\tw1\tyes\n")
        gold_file.write_text("o1\tyes\nmystery\tno\n")
        with pytest.raises(DatasetError, match="absent"):
            load_answer_files(response, gold_file)

    def test_gold_missing_object_rejected(self, tmp_path):
        response = tmp_path / "r.tsv"
        gold_file = tmp_path / "g.tsv"
        response.write_text("o1\tw1\tyes\no2\tw1\tno\n")
        gold_file.write_text("o1\tyes\n")
        with pytest.raises(DatasetError, match="misses"):
            load_answer_files(response, gold_file)

    def test_empty_response_rejected(self, tmp_path):
        path = tmp_path / "r.tsv"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError, match="no answer triples"):
            load_answer_files(path)

    def test_gold_label_unseen_in_responses(self, tmp_path):
        response = tmp_path / "r.tsv"
        gold_file = tmp_path / "g.tsv"
        response.write_text("o1\tw1\tyes\n")
        gold_file.write_text("o1\tmaybe\n")
        answers, gold = load_answer_files(response, gold_file)
        assert "maybe" in answers.labels
        assert answers.labels[gold[0]] == "maybe"


class TestChecks:
    def test_fraction(self):
        assert check_fraction(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            check_fraction(-0.1, "x")
        with pytest.raises(ValueError):
            check_fraction(1.1, "x")

    def test_positive(self):
        assert check_positive(2.0, "x") == 2.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(2.5, "x")

    def test_distribution(self):
        check_distribution(np.array([0.5, 0.5]), "p")
        with pytest.raises(InvalidProbabilityError):
            check_distribution(np.array([0.5, 0.6]), "p")
        with pytest.raises(InvalidProbabilityError):
            check_distribution(np.array([[0.5, 0.5]]), "p")

    def test_row_stochastic(self):
        check_row_stochastic(np.array([[0.5, 0.5]]), "m")
        with pytest.raises(InvalidProbabilityError):
            check_row_stochastic(np.array([[0.5, 0.4]]), "m")
        with pytest.raises(InvalidProbabilityError):
            check_row_stochastic(np.array([0.5, 0.5]), "m")


class TestRng:
    def test_ensure_rng_passthrough_and_seed(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng
        a, b = ensure_rng(42), ensure_rng(42)
        assert a.random() == b.random()

    def test_split_rng_independent_and_deterministic(self):
        parent_a = ensure_rng(9)
        parent_b = ensure_rng(9)
        children_a = split_rng(parent_a, 3)
        children_b = split_rng(parent_b, 3)
        for x, y in zip(children_a, children_b):
            assert x.random() == y.random()
        with pytest.raises(ValueError):
            split_rng(parent_a, -1)


class TestJointEntropy:
    def test_greedy_matches_exact_on_tiny_instances(self, small_crowd):
        from repro.core.em import DawidSkeneEM
        from repro.guidance import (
            exact_max_entropy_subset,
            greedy_max_entropy_subset,
            object_covariance,
        )
        prob_set = DawidSkeneEM().fit(
            small_crowd.answer_set.subset_objects(range(8)))
        cov = object_covariance(prob_set)
        exact_set, exact_val = exact_max_entropy_subset(cov, 3)
        greedy_set, greedy_val = greedy_max_entropy_subset(cov, 3)
        assert greedy_val <= exact_val + 1e-9
        assert greedy_val >= exact_val - 1.0  # near-optimal on tiny cases
        assert exact_set.size == greedy_set.size == 3

    def test_joint_entropy_subadditive(self, small_crowd):
        """Gaussian joint entropy is subadditive: H(X,Y) ≤ H(X) + H(Y),
        with equality only for independent (uncorrelated) objects."""
        from repro.core.em import DawidSkeneEM
        from repro.guidance import gaussian_joint_entropy, object_covariance
        prob_set = DawidSkeneEM().fit(small_crowd.answer_set)
        cov = object_covariance(prob_set)
        h0 = gaussian_joint_entropy(cov, [0])
        h1 = gaussian_joint_entropy(cov, [1])
        h01 = gaussian_joint_entropy(cov, [0, 1])
        assert h01 <= h0 + h1 + 1e-9
        assert np.isfinite(h01)
        assert gaussian_joint_entropy(cov, []) == 0.0

    def test_subset_size_validation(self, small_crowd):
        from repro.core.em import DawidSkeneEM
        from repro.guidance import (
            exact_max_entropy_subset,
            greedy_max_entropy_subset,
            object_covariance,
        )
        prob_set = DawidSkeneEM().fit(
            small_crowd.answer_set.subset_objects(range(4)))
        cov = object_covariance(prob_set)
        with pytest.raises(ValueError):
            exact_max_entropy_subset(cov, 5)
        with pytest.raises(ValueError):
            greedy_max_entropy_subset(cov, 0)

    def test_greedy_validation_order(self, small_crowd):
        from repro.core.em import DawidSkeneEM
        from repro.guidance import greedy_validation_order
        prob_set = DawidSkeneEM().fit(small_crowd.answer_set)
        order = greedy_validation_order(prob_set, budget=5)
        assert order.size == 5
        assert np.unique(order).size == 5

    def test_covariance_positive_definite(self, small_crowd):
        from repro.core.em import DawidSkeneEM
        from repro.guidance import object_covariance
        prob_set = DawidSkeneEM().fit(small_crowd.answer_set)
        cov = object_covariance(prob_set)
        eigenvalues = np.linalg.eigvalsh(cov)
        assert np.all(eigenvalues > 0)


@given(values=st.lists(st.integers(min_value=0, max_value=3),
                       min_size=1, max_size=30),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_property_precision_bounds(values, seed):
    rng = np.random.default_rng(seed)
    assignment = np.array(values)
    gold = rng.integers(0, 4, size=assignment.size)
    value = precision(assignment, gold)
    assert 0.0 <= value <= 1.0
    assert precision(gold, gold) == 1.0
