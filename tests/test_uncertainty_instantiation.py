"""Tests for entropy measures, majority voting, and instantiation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.instantiation import assignment_confidence, deterministic_assignment
from repro.core.majority import majority_probabilistic, majority_vote
from repro.core.uncertainty import (
    answer_set_uncertainty,
    entropy_of_distribution,
    max_entropy_object,
    normalized_uncertainty,
    object_entropies,
)
from repro.core.validation import ExpertValidation


class TestEntropy:
    def test_certain_distribution_is_zero(self):
        assert entropy_of_distribution(np.array([1.0, 0.0])) == 0.0

    def test_uniform_is_log_m(self):
        assert entropy_of_distribution(np.full(4, 0.25)) == \
            pytest.approx(np.log(4))

    def test_object_entropies_eq6(self):
        assignment = np.array([[1.0, 0.0], [0.5, 0.5]])
        entropies = object_entropies(assignment)
        assert entropies[0] == pytest.approx(0.0)
        assert entropies[1] == pytest.approx(np.log(2))

    def test_uncertainty_eq7_sums_objects(self, table1_answer_set):
        from repro.core.em import DawidSkeneEM
        prob_set = DawidSkeneEM().fit(table1_answer_set)
        assert answer_set_uncertainty(prob_set) == pytest.approx(
            object_entropies(prob_set.assignment).sum())

    def test_normalized_uncertainty_bounds(self, small_crowd):
        from repro.core.em import DawidSkeneEM
        prob_set = DawidSkeneEM().fit(small_crowd.answer_set)
        assert 0.0 <= normalized_uncertainty(prob_set) <= 1.0

    def test_max_entropy_object_with_candidates(self, table1_answer_set):
        from repro.core.em import DawidSkeneEM
        prob_set = DawidSkeneEM().fit(table1_answer_set)
        top = max_entropy_object(prob_set)
        entropies = object_entropies(prob_set.assignment)
        assert entropies[top] == entropies.max()
        restricted = max_entropy_object(prob_set, np.array([0, 1]))
        assert restricted in (0, 1)

    def test_max_entropy_object_empty_candidates(self, table1_answer_set):
        from repro.core.em import DawidSkeneEM
        prob_set = DawidSkeneEM().fit(table1_answer_set)
        with pytest.raises(ValueError):
            max_entropy_object(prob_set, np.array([], dtype=np.int64))


@given(rows=st.lists(
    st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=3, max_size=3),
    min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_property_entropy_bounds(rows):
    """0 ≤ H(o) ≤ log m for every normalized row."""
    matrix = np.array(rows)
    matrix /= matrix.sum(axis=1, keepdims=True)
    entropies = object_entropies(matrix)
    assert np.all(entropies >= -1e-12)
    assert np.all(entropies <= np.log(3) + 1e-9)


class TestMajorityVote:
    def test_table1_majority(self, table1_answer_set):
        """Table 1's 'Majority Voting' column: o1→2, o2→3, o3→tie(1,4),
        o4→1 (wrong)."""
        labels = majority_vote(table1_answer_set)
        assert labels[0] == 1  # label "2"
        assert labels[1] == 2  # label "3"
        assert labels[2] in (0, 3)  # tie between labels "1" and "4"
        assert labels[3] == 0  # label "1" (incorrect, per the paper)

    def test_random_tie_break_seeded(self, table1_answer_set):
        a = majority_vote(table1_answer_set, tie_break="random", rng=1)
        b = majority_vote(table1_answer_set, tie_break="random", rng=1)
        assert np.array_equal(a, b)

    def test_unknown_tie_break(self, table1_answer_set):
        with pytest.raises(ValueError):
            majority_vote(table1_answer_set, tie_break="bogus")

    def test_majority_probabilistic_rows_are_distributions(
            self, table1_answer_set):
        prob_set = majority_probabilistic(table1_answer_set)
        assert np.allclose(prob_set.assignment.sum(axis=1), 1.0)

    def test_majority_probabilistic_clamps_validation(self, table1_answer_set):
        validation = ExpertValidation.from_mapping({3: 1}, 4, 4)
        prob_set = majority_probabilistic(table1_answer_set, validation)
        assert prob_set.probability(3, 1) == 1.0

    def test_object_with_no_votes_uniform(self):
        answers = AnswerSet(np.array([[0], [MISSING]]), labels=("a", "b"))
        prob_set = majority_probabilistic(answers)
        assert np.allclose(prob_set.assignment[1], 0.5)


class TestInstantiation:
    def test_filter_prefers_expert_labels(self, table1_answer_set):
        from repro.core.em import DawidSkeneEM
        validation = ExpertValidation.from_mapping({2: 3}, 4, 4)
        prob_set = DawidSkeneEM().fit(table1_answer_set, validation)
        assignment = deterministic_assignment(prob_set)
        assert assignment[2] == 3

    def test_filter_is_argmax_otherwise(self, table1_answer_set):
        from repro.core.em import DawidSkeneEM
        prob_set = DawidSkeneEM().fit(table1_answer_set)
        assignment = deterministic_assignment(prob_set)
        assert np.array_equal(assignment,
                              np.argmax(prob_set.assignment, axis=1))

    def test_confidence_one_for_validated(self, table1_answer_set):
        from repro.core.em import DawidSkeneEM
        validation = ExpertValidation.from_mapping({0: 0}, 4, 4)
        prob_set = DawidSkeneEM().fit(table1_answer_set, validation)
        confidence = assignment_confidence(prob_set)
        assert confidence[0] == 1.0
        assert np.all(confidence >= 1.0 / 4 - 1e-12)


class TestProbabilisticAnswerSet:
    def test_shape_validation(self, table1_answer_set):
        from repro.core.em import DawidSkeneEM
        from repro.core.probabilistic import ProbabilisticAnswerSet
        from repro.errors import InvalidProbabilityError
        good = DawidSkeneEM().fit(table1_answer_set)
        with pytest.raises(InvalidProbabilityError):
            ProbabilisticAnswerSet(
                answer_set=table1_answer_set,
                validation=good.validation,
                assignment=good.assignment[:2],
                confusions=good.confusions,
                priors=good.priors)

    def test_correct_label_probabilities(self, table1_answer_set, table1_gold):
        from repro.core.em import DawidSkeneEM
        prob_set = DawidSkeneEM().fit(table1_answer_set)
        probs = prob_set.correct_label_probabilities(table1_gold)
        assert probs.shape == (4,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_confusion_of_by_name(self, table1_answer_set):
        from repro.core.em import DawidSkeneEM
        prob_set = DawidSkeneEM().fit(table1_answer_set)
        assert prob_set.confusion_of("w3").shape == (4, 4)
