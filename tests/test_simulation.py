"""Tests for worker profiles, the crowd simulator, and dataset stand-ins."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer_set import MISSING
from repro.errors import DatasetError
from repro.simulation import (
    CrowdConfig,
    DATASET_NAMES,
    DATASET_SPECS,
    allocate_types,
    apply_difficulty,
    confusion_for_type,
    dataset_statistics,
    load_dataset,
    normal_confusion,
    random_spammer_confusion,
    reliable_confusion,
    restore_answers,
    simulate_crowd,
    sloppy_confusion,
    subsample_per_object,
    uniform_spammer_confusion,
)
from repro.workers.types import DEFAULT_POPULATION, WorkerType


class TestProfiles:
    def test_all_profiles_are_row_stochastic(self):
        for worker_type in WorkerType:
            conf = confusion_for_type(worker_type, 3, rng=0)
            assert conf.shape == (3, 3)
            assert np.allclose(conf.sum(axis=1), 1.0)

    def test_reliable_has_high_diagonal(self):
        conf = reliable_confusion(2, rng=0)
        assert np.all(np.diag(conf) >= 0.9)

    def test_normal_centred_on_reliability(self):
        confs = [normal_confusion(2, reliability=0.7, rng=s)
                 for s in range(20)]
        mean_diag = np.mean([np.diag(c).mean() for c in confs])
        assert 0.65 < mean_diag < 0.75

    def test_sloppy_mostly_wrong(self):
        conf = sloppy_confusion(2, rng=0)
        assert np.all(np.diag(conf) < 0.5)

    def test_uniform_spammer_single_column(self):
        conf = uniform_spammer_confusion(3, fixed_label=1)
        assert np.allclose(conf[:, 1], 1.0)
        assert conf.sum() == pytest.approx(3.0)

    def test_random_spammer_uniform(self):
        conf = random_spammer_confusion(4)
        assert np.allclose(conf, 0.25)

    def test_apply_difficulty_tempers_toward_uniform(self):
        conf = np.eye(2)
        easy = apply_difficulty(conf, 0.0)
        hard = apply_difficulty(conf, 1.0)
        assert np.allclose(easy, conf)
        assert np.allclose(hard, 0.5)
        mid = apply_difficulty(conf, 0.4)
        assert np.all(np.diag(mid) < 1.0)
        assert np.allclose(mid.sum(axis=1), 1.0)


class TestAllocateTypes:
    def test_counts_sum_to_n(self):
        types = allocate_types(DEFAULT_POPULATION, 20)
        assert len(types) == 20

    def test_largest_remainder_is_close(self):
        types = allocate_types({WorkerType.NORMAL: 0.5,
                                WorkerType.SLOPPY: 0.5}, 7)
        normal = sum(1 for t in types if t is WorkerType.NORMAL)
        assert normal in (3, 4)

    def test_empty_population_rejected(self):
        with pytest.raises(DatasetError):
            allocate_types({WorkerType.NORMAL: 0.0}, 5)


class TestCrowdConfig:
    def test_mutually_exclusive_sparsity(self):
        with pytest.raises(DatasetError):
            CrowdConfig(10, 5, answers_per_object=3,
                        max_answers_per_worker=3)

    def test_answers_per_object_bounds(self):
        with pytest.raises(DatasetError):
            CrowdConfig(10, 5, answers_per_object=6)

    def test_with_spammer_fraction(self):
        config = CrowdConfig(10, 10).with_spammer_fraction(0.4)
        spam = (config.population[WorkerType.UNIFORM_SPAMMER]
                + config.population[WorkerType.RANDOM_SPAMMER])
        assert spam == pytest.approx(0.4)
        honest = (config.population[WorkerType.NORMAL]
                  + config.population[WorkerType.SLOPPY])
        assert honest == pytest.approx(0.6)
        # normal:sloppy proportion preserved from the default mix
        ratio = config.population[WorkerType.NORMAL] / honest
        default_ratio = DEFAULT_POPULATION[WorkerType.NORMAL] / (
            DEFAULT_POPULATION[WorkerType.NORMAL]
            + DEFAULT_POPULATION[WorkerType.SLOPPY])
        assert ratio == pytest.approx(default_ratio)


class TestSimulateCrowd:
    def test_deterministic_for_seed(self):
        config = CrowdConfig(15, 8)
        a = simulate_crowd(config, rng=3)
        b = simulate_crowd(config, rng=3)
        assert a.answer_set == b.answer_set
        assert np.array_equal(a.gold, b.gold)

    def test_dense_by_default(self):
        crowd = simulate_crowd(CrowdConfig(10, 5), rng=0)
        assert crowd.answer_set.density == 1.0

    def test_answers_per_object_sparsity(self):
        crowd = simulate_crowd(CrowdConfig(20, 10, answers_per_object=4),
                               rng=0)
        assert np.all(crowd.answer_set.answers_per_object() == 4)

    def test_max_answers_per_worker(self):
        crowd = simulate_crowd(
            CrowdConfig(50, 10, max_answers_per_worker=7), rng=0)
        assert np.all(crowd.answer_set.answers_per_worker() <= 7)

    def test_uniform_spammers_answer_uniformly(self):
        crowd = simulate_crowd(CrowdConfig(
            40, 10, population={WorkerType.UNIFORM_SPAMMER: 1.0}), rng=0)
        matrix = crowd.answer_set.matrix
        for j in range(10):
            column = matrix[:, j]
            assert np.unique(column[column != MISSING]).size == 1

    def test_reliable_crowd_mostly_correct(self):
        crowd = simulate_crowd(CrowdConfig(
            40, 10, population={WorkerType.RELIABLE: 1.0}), rng=0)
        accuracy = np.mean(crowd.answer_set.matrix == crowd.gold[:, None])
        assert accuracy > 0.85

    def test_difficulty_lowers_accuracy(self):
        easy = simulate_crowd(CrowdConfig(
            60, 10, population={WorkerType.NORMAL: 1.0}, reliability=0.8,
            difficulty=0.0), rng=1)
        hard = simulate_crowd(CrowdConfig(
            60, 10, population={WorkerType.NORMAL: 1.0}, reliability=0.8,
            difficulty=0.8), rng=1)
        acc_easy = np.mean(easy.answer_set.matrix == easy.gold[:, None])
        acc_hard = np.mean(hard.answer_set.matrix == hard.gold[:, None])
        assert acc_hard < acc_easy

    def test_faulty_mask_matches_types(self, spammy_crowd):
        mask = spammy_crowd.faulty_mask
        for worker, worker_type in enumerate(spammy_crowd.worker_types):
            assert mask[worker] == worker_type.is_faulty


class TestSubsampleRestore:
    def test_subsample_reduces_to_target(self, small_crowd):
        thinned = subsample_per_object(small_crowd, 5, rng=0)
        assert np.all(thinned.answers_per_object() == 5)

    def test_restore_brings_answers_back(self, small_crowd):
        thinned = subsample_per_object(small_crowd, 5, rng=0)
        restored = restore_answers(thinned, small_crowd.answer_set, 9, rng=0)
        assert np.all(restored.answers_per_object() == 9)
        # Restored answers must agree with the full matrix.
        mask = restored.matrix != MISSING
        assert np.array_equal(restored.matrix[mask],
                              small_crowd.answer_set.matrix[mask])

    def test_restore_caps_at_available(self, small_crowd):
        thinned = subsample_per_object(small_crowd, 5, rng=0)
        restored = restore_answers(thinned, small_crowd.answer_set, 999,
                                   rng=0)
        assert np.array_equal(restored.matrix, small_crowd.answer_set.matrix)


class TestRealWorldDatasets:
    def test_table4_statistics(self):
        rows = dataset_statistics()
        by_name = {row["dataset"]: row for row in rows}
        assert by_name["bb"]["objects"] == 108
        assert by_name["bb"]["workers"] == 39
        assert by_name["rte"]["objects"] == 800
        assert by_name["rte"]["workers"] == 164
        assert by_name["val"]["objects"] == 100
        assert by_name["twt"]["objects"] == 300
        assert by_name["art"]["objects"] == 200
        assert all(row["labels"] == 2 for row in rows)

    def test_load_dataset_deterministic(self):
        a = load_dataset("val")
        b = load_dataset("val")
        assert a.answer_set == b.answer_set
        assert np.array_equal(a.gold, b.gold)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("nope")

    def test_bb_is_dense(self):
        assert load_dataset("bb").answer_set.density == 1.0

    def test_sparse_sets_have_ten_answers(self):
        for name in ("rte", "val", "twt", "art"):
            dataset = load_dataset(name)
            assert np.all(dataset.answer_set.answers_per_object() == 10), name

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_initial_em_precision_calibration(self, name):
        """Stand-ins reproduce the paper's initial precision within a
        tolerance band (see realworld.py docstring)."""
        from repro.core.em import DawidSkeneEM
        from repro.metrics import precision
        targets = {"bb": 0.86, "rte": 0.92, "val": 0.80,
                   "twt": 0.88, "art": 0.65}
        dataset = load_dataset(name)
        prob_set = DawidSkeneEM().fit(dataset.answer_set)
        value = precision(prob_set.map_labels(), dataset.gold)
        assert abs(value - targets[name]) < 0.06, (name, value)

    def test_spec_order(self):
        assert tuple(DATASET_SPECS) == DATASET_NAMES


@given(
    n=st.integers(min_value=2, max_value=15),
    k=st.integers(min_value=2, max_value=8),
    m=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=20, deadline=None)
def test_property_simulated_answers_in_range(n, k, m, seed):
    crowd = simulate_crowd(CrowdConfig(n, k, n_labels=m), rng=seed)
    matrix = crowd.answer_set.matrix
    assert matrix.shape == (n, k)
    assert np.all((matrix >= 0) & (matrix < m))  # dense default
    assert np.all((crowd.gold >= 0) & (crowd.gold < m))
    assert len(crowd.worker_types) == k
    assert crowd.true_confusions.shape == (k, m, m)
