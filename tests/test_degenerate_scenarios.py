"""Degenerate-scenario edge cases: graceful behavior, never crashes.

The adversarial registry covers rich workloads; these tests push the
*corners* — an all-spammer crowd, a single-worker community, zero expert
budget — through :mod:`repro.process.faulty_filter`,
:mod:`repro.costmodel.allocation`, and the scenario harness itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel.allocation import (
    AllocationPoint,
    allocation_curve,
    best_allocation,
    best_allocation_with_time,
)
from repro.errors import CostModelError
from repro.experts.simulated import OracleExpert
from repro.process.faulty_filter import FaultyWorkerFilter
from repro.process.validation_process import ValidationProcess
from repro.scenarios import (
    ExpertSpec,
    ScenarioRunner,
    ScenarioSpec,
    compile_scenario,
)
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.workers.spammer_detection import SpammerDetector
from repro.workers.types import WorkerType

ALL_SPAMMER = {
    WorkerType.UNIFORM_SPAMMER: 0.5,
    WorkerType.RANDOM_SPAMMER: 0.5,
}


# ----------------------------------------------------------------------
# FaultyWorkerFilter corners
# ----------------------------------------------------------------------
class TestFaultyFilterDegenerate:
    def test_commit_before_any_observe_is_empty(self):
        filt = FaultyWorkerFilter()
        assert filt.commit() == frozenset()
        assert filt.history == [0]

    def test_all_spammer_crowd_masking_is_capped(self):
        """Even when every worker is flagged every round, the masked-share
        cap keeps the aggregation from losing the whole community."""
        crowd = simulate_crowd(
            CrowdConfig(n_objects=20, n_workers=10, population=ALL_SPAMMER),
            rng=3)
        detector = SpammerDetector()
        filt = FaultyWorkerFilter(persistence=1, max_masked_fraction=0.2)
        process = ValidationProcess(crowd.answer_set,
                                    OracleExpert(crowd.gold),
                                    budget=10, gold=crowd.gold, rng=0)
        for obj in range(8):
            process.session.add_validation(obj, int(crowd.gold[obj]),
                                           overwrite=True)
        detection = detector.detect(crowd.answer_set, process.validation)
        suspected = filt.handle(detection)
        assert len(suspected) <= max(1, int(0.2 * 10))

    def test_single_worker_community(self):
        filt = FaultyWorkerFilter(persistence=1)
        matrix = np.array([[0], [1], [0], [1], [0]])
        from repro.core.answer_set import AnswerSet
        from repro.core.validation import ExpertValidation
        answers = AnswerSet(matrix, labels=("a", "b"))
        validation = ExpertValidation.from_mapping(
            {0: 0, 1: 0, 2: 0, 3: 0}, 5, 2)
        detection = SpammerDetector().detect(answers, validation)
        suspected = filt.handle(detection)
        # the cap floor allows masking the single worker if truly flagged,
        # but never errors out
        assert suspected <= {0}

    def test_streak_break_reinstates_worker(self):
        filt = FaultyWorkerFilter(persistence=2)
        flagged = _detection_with_flags(5, [2])
        clean = _detection_with_flags(5, [])
        filt.observe(flagged)
        filt.commit()
        assert filt.suspected == frozenset()  # persistence not yet met
        filt.observe(flagged)
        assert filt.commit() == frozenset({2})
        filt.observe(clean)
        assert filt.commit() == frozenset()  # streak broke: re-included


def _detection_with_flags(k: int, spammers: list[int]):
    from repro.workers.spammer_detection import DetectionResult
    mask = np.zeros(k, dtype=bool)
    mask[spammers] = True
    return DetectionResult(
        spammer_scores=np.where(mask, 0.0, np.inf),
        error_rates=np.zeros(k),
        evidence=np.full(k, 5),
        spammer_mask=mask,
        sloppy_mask=np.zeros(k, dtype=bool),
    )


# ----------------------------------------------------------------------
# ValidationProcess corners
# ----------------------------------------------------------------------
class TestProcessDegenerate:
    def test_zero_budget_run_returns_initial_state(self):
        crowd = simulate_crowd(CrowdConfig(n_objects=10, n_workers=5), rng=1)
        process = ValidationProcess(crowd.answer_set,
                                    OracleExpert(crowd.gold),
                                    budget=0, gold=crowd.gold, rng=0)
        report = process.run()
        assert report.n_iterations == 0
        assert report.total_effort == 0
        assert report.final_precision() == report.initial_precision

    def test_all_spammer_crowd_survives_validation(self):
        crowd = simulate_crowd(
            CrowdConfig(n_objects=12, n_workers=6, population=ALL_SPAMMER),
            rng=5)
        process = ValidationProcess(crowd.answer_set,
                                    OracleExpert(crowd.gold),
                                    budget=12, gold=crowd.gold, rng=0)
        report = process.run()
        # every object validated by the oracle => perfect by exhaustion
        assert report.final_precision() == 1.0

    def test_single_worker_process(self):
        matrix = np.array([[0], [1], [0], [1]])
        from repro.core.answer_set import AnswerSet
        answers = AnswerSet(matrix, labels=("a", "b"))
        gold = np.array([0, 0, 1, 1])
        process = ValidationProcess(answers, OracleExpert(gold),
                                    budget=4, gold=gold, rng=0)
        report = process.run()
        assert report.final_precision() == 1.0


# ----------------------------------------------------------------------
# Scenario harness corners
# ----------------------------------------------------------------------
class TestScenarioDegenerate:
    def test_all_spammer_scenario_conforms(self):
        """Cross-path agreement holds even when no worker carries signal."""
        spec = ScenarioSpec(
            name="all-spam", n_objects=12, n_workers=6,
            population=ALL_SPAMMER,
            expert=ExpertSpec(n_validations=6), seed=17)
        outcome = ScenarioRunner().run(compile_scenario(spec), "exact")
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0

    def test_single_worker_scenario_conforms(self):
        spec = ScenarioSpec(
            name="solo", n_objects=8, n_workers=1,
            population={WorkerType.NORMAL: 1.0},
            expert=ExpertSpec(n_validations=4), seed=23)
        outcome = ScenarioRunner().run(compile_scenario(spec), "exact")
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0

    def test_zero_budget_scenario(self):
        spec = ScenarioSpec(
            name="nobudget", n_objects=8, n_workers=4,
            expert=ExpertSpec(n_validations=0), seed=29)
        compiled = compile_scenario(spec)
        assert compiled.validation_events == ()
        outcome = ScenarioRunner().run(compiled, "exact")
        assert outcome.report.total_effort == 0
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0


# ----------------------------------------------------------------------
# Budget allocation corners
# ----------------------------------------------------------------------
class TestAllocationDegenerate:
    def _crowd(self):
        return simulate_crowd(
            CrowdConfig(n_objects=12, n_workers=8, answers_per_object=6),
            rng=7)

    def test_all_spammer_allocation_curve_completes(self):
        crowd = simulate_crowd(
            CrowdConfig(n_objects=12, n_workers=8, answers_per_object=6,
                        population=ALL_SPAMMER), rng=7)
        points = allocation_curve(crowd, rho=0.5, theta=5.0,
                                  shares=[0.5, 0.75, 1.0], rng=0)
        assert points  # no crash, at least one feasible split
        best = best_allocation(points)
        assert 0.0 <= best.precision <= 1.0

    def test_zero_time_budget_constraint(self):
        points = [
            AllocationPoint(crowd_share=1.0, phi0=6, n_validations=0,
                            precision=0.6),
            AllocationPoint(crowd_share=0.5, phi0=3, n_validations=6,
                            precision=0.9),
        ]
        constrained = best_allocation_with_time(points, max_validations=0)
        assert constrained.optimum.n_validations == 0
        assert constrained.boundary_share == 1.0

    def test_unsatisfiable_time_constraint_raises_cleanly(self):
        points = [AllocationPoint(crowd_share=0.5, phi0=3, n_validations=6,
                                  precision=0.9)]
        with pytest.raises(CostModelError, match="time constraint"):
            best_allocation_with_time(points, max_validations=2)

    def test_empty_points_rejected(self):
        with pytest.raises(CostModelError, match="no allocation points"):
            best_allocation([])

    def test_infeasible_budget_raises_cost_model_error(self):
        crowd = self._crowd()
        with pytest.raises(CostModelError, match="rho must be in"):
            # total budget below one answer per object: rejected up front
            allocation_curve(crowd, rho=0.05, theta=1.0, shares=[0.5, 1.0],
                             rng=0)

    def test_single_worker_allocation(self):
        crowd = simulate_crowd(
            CrowdConfig(n_objects=10, n_workers=1,
                        population={WorkerType.NORMAL: 1.0}), rng=9)
        points = allocation_curve(crowd, rho=0.5, theta=4.0,
                                  shares=[0.5, 1.0], rng=0)
        assert all(p.phi0 <= 1 for p in points)
