"""Unit and property tests for confusion-matrix utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer_set import AnswerSet
from repro.core.confusion import (
    accuracy,
    error_rate,
    normalize_rows,
    rank_one_distance,
    sensitivity_specificity,
    validated_answer_counts,
    validated_confusion_counts,
    validated_confusions,
)
from repro.core.validation import ExpertValidation
from repro.errors import InvalidProbabilityError


class TestNormalizeRows:
    def test_plain_normalization(self):
        result = normalize_rows(np.array([[2.0, 2.0], [1.0, 3.0]]))
        assert np.allclose(result, [[0.5, 0.5], [0.25, 0.75]])

    def test_zero_rows_become_uniform(self):
        result = normalize_rows(np.array([[0.0, 0.0], [4.0, 0.0]]))
        assert np.allclose(result[0], [0.5, 0.5])
        assert np.allclose(result[1], [1.0, 0.0])

    def test_smoothing(self):
        result = normalize_rows(np.array([[1.0, 0.0]]), smoothing=1.0)
        assert np.allclose(result, [[2 / 3, 1 / 3]])

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            normalize_rows(np.array([[-1.0, 2.0]]))

    def test_stacked_matrices(self):
        stacked = np.ones((3, 2, 2))
        result = normalize_rows(stacked)
        assert result.shape == (3, 2, 2)
        assert np.allclose(result.sum(axis=-1), 1.0)


class TestRankOneDistance:
    def test_random_spammer_scores_zero(self):
        assert rank_one_distance(np.array([[0.5, 0.5], [0.5, 0.5]])) == \
            pytest.approx(0.0, abs=1e-12)

    def test_uniform_spammer_scores_zero(self):
        assert rank_one_distance(np.array([[0.0, 1.0], [0.0, 1.0]])) == \
            pytest.approx(0.0, abs=1e-12)

    def test_perfect_worker_scores_high(self):
        assert rank_one_distance(np.eye(2)) == pytest.approx(1.0)
        assert rank_one_distance(np.eye(3)) == pytest.approx(np.sqrt(2.0))

    def test_non_square_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            rank_one_distance(np.ones((2, 3)))

    def test_1x1_is_zero(self):
        assert rank_one_distance(np.array([[1.0]])) == 0.0


class TestErrorRateAccuracy:
    def test_uniform_priors_default(self):
        conf = np.array([[0.9, 0.1], [0.3, 0.7]])
        assert error_rate(conf) == pytest.approx(0.2)
        assert accuracy(conf) == pytest.approx(0.8)

    def test_weighted_priors(self):
        conf = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert error_rate(conf, np.array([1.0, 0.0])) == pytest.approx(0.0)
        assert error_rate(conf, np.array([0.0, 1.0])) == pytest.approx(1.0)


class TestValidatedConfusions:
    def test_counts_only_over_validated(self, table2_answer_sets, table2_gold):
        validation = ExpertValidation.from_mapping(
            {i: int(table2_gold[i]) for i in range(4)}, 8, 2)
        counts = validated_confusion_counts(table2_answer_sets, validation)
        # worker A on first 4 objects (gold T,T,F,F; answers T,F,T,F)
        assert counts[0].tolist() == [[1, 1], [1, 1]]
        # worker A' always answers F
        assert counts[1].tolist() == [[0, 2], [0, 2]]
        evidence = validated_answer_counts(table2_answer_sets, validation)
        assert evidence.tolist() == [4, 4]

    def test_no_validations_gives_zero_counts(self, table2_answer_sets):
        validation = ExpertValidation.empty_for(table2_answer_sets)
        counts = validated_confusion_counts(table2_answer_sets, validation)
        assert counts.sum() == 0
        evidence = validated_answer_counts(table2_answer_sets, validation)
        assert evidence.tolist() == [0, 0]

    def test_table2_worker_matrices(self, table2_answer_sets, table2_gold):
        """Full validation reproduces the confusion matrices printed in
        Table 2 (A: all 0.5; A': ones column on F)."""
        validation = ExpertValidation.from_mapping(
            {i: int(table2_gold[i]) for i in range(8)}, 8, 2)
        confusions = validated_confusions(table2_answer_sets, validation)
        assert np.allclose(confusions[0], 0.5)
        assert np.allclose(confusions[1], [[0.0, 1.0], [0.0, 1.0]])

    def test_missing_answers_ignored(self):
        answers = AnswerSet(np.array([[0], [-1]]), labels=("T", "F"))
        validation = ExpertValidation.from_mapping({0: 0, 1: 1}, 2, 2)
        counts = validated_confusion_counts(answers, validation)
        assert counts.sum() == 1


class TestSensitivitySpecificity:
    def test_binary_values(self):
        sens, spec = sensitivity_specificity(np.array([[0.8, 0.2],
                                                       [0.4, 0.6]]))
        assert sens == pytest.approx(0.8)
        assert spec == pytest.approx(0.6)

    def test_non_binary_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            sensitivity_specificity(np.eye(3))


@st.composite
def stochastic_matrix(draw, max_m: int = 4):
    m = draw(st.integers(min_value=2, max_value=max_m))
    rows = [draw(st.lists(st.floats(min_value=0.01, max_value=1.0),
                          min_size=m, max_size=m)) for _ in range(m)]
    matrix = np.array(rows)
    return matrix / matrix.sum(axis=1, keepdims=True)


@given(matrix=stochastic_matrix())
@settings(max_examples=50, deadline=None)
def test_property_rank_one_distance_bounds(matrix):
    """0 ≤ s(w) ≤ √(m−1) for any row-stochastic confusion matrix."""
    m = matrix.shape[0]
    score = rank_one_distance(matrix)
    assert -1e-9 <= score <= np.sqrt(m - 1) + 1e-9


@given(matrix=stochastic_matrix())
@settings(max_examples=50, deadline=None)
def test_property_error_rate_in_unit_interval(matrix):
    assert 0.0 <= error_rate(matrix) <= 1.0 + 1e-12
    assert error_rate(matrix) + accuracy(matrix) == pytest.approx(1.0)


@given(counts=st.lists(
    st.lists(st.integers(min_value=0, max_value=20), min_size=3, max_size=3),
    min_size=3, max_size=3))
@settings(max_examples=50, deadline=None)
def test_property_normalize_rows_is_stochastic(counts):
    result = normalize_rows(np.array(counts, dtype=float))
    assert np.allclose(result.sum(axis=1), 1.0)
    assert np.all(result >= 0)
