"""Golden-fixture regression for spammer detection on adversarial scenarios.

The fixtures under ``tests/fixtures/`` pin the full evidence-accumulation
detection curve (precision/recall after each successive expert validation)
on the colluding-clique and sleeper-spammers scenarios. Both workloads are
exactly the ones where detection quality is fragile — colluders have
*individually* plausible confusion matrices and sleepers bury their spam
phase under an honest prefix — so silent drift in the detector, in the
validated-confusion counting, or in scenario compilation fails loudly here
instead of surfacing as a mysteriously changed Figure 9.

Regenerate (only for *intentional* changes — call it out in the commit
message)::

    PYTHONPATH=src python - <<'PY'
    import json, numpy as np
    from repro.scenarios import compile_registered
    from repro.workers.spammer_detection import detection_curve
    for name in ("colluding-clique", "sleeper-spammers"):
        c = compile_registered(name)
        order = [e.object_index for e in c.validation_events]
        labels = [e.label for e in c.validation_events]
        curve = detection_curve(c.answer_set, np.array(order),
                                np.array(labels), c.true_spammer_mask)
        fixture = {"scenario": name, "seed": c.seed,
                   "n_objects": c.n_objects, "n_workers": c.n_workers,
                   "true_spammers":
                       np.flatnonzero(c.true_spammer_mask).tolist(),
                   "validation_order": order, "validation_labels": labels,
                   "curve": curve}
        path = f"tests/fixtures/detection_{name.replace('-', '_')}.json"
        json.dump(fixture, open(path, "w"), indent=2)
    PY
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.scenarios import compile_registered
from repro.workers.spammer_detection import detection_curve

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

SCENARIOS = ("colluding-clique", "sleeper-spammers")


def _load(name: str) -> dict:
    path = FIXTURES / f"detection_{name.replace('-', '_')}.json"
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", SCENARIOS)
def test_scenario_compilation_matches_fixture(name):
    """Seed → scenario is part of the golden contract."""
    fixture = _load(name)
    compiled = compile_registered(name)
    assert compiled.seed == fixture["seed"]
    assert compiled.n_objects == fixture["n_objects"]
    assert compiled.n_workers == fixture["n_workers"]
    assert np.flatnonzero(compiled.true_spammer_mask).tolist() \
        == fixture["true_spammers"]
    assert [e.object_index for e in compiled.validation_events] \
        == fixture["validation_order"]
    assert [e.label for e in compiled.validation_events] \
        == fixture["validation_labels"]


@pytest.mark.parametrize("name", SCENARIOS)
def test_detection_curve_matches_fixture(name):
    """Precision/recall after every validation, pinned point by point."""
    fixture = _load(name)
    compiled = compile_registered(name)
    curve = detection_curve(
        compiled.answer_set,
        np.array(fixture["validation_order"]),
        np.array(fixture["validation_labels"]),
        compiled.true_spammer_mask)
    assert len(curve) == len(fixture["curve"])
    for got, want in zip(curve, fixture["curve"]):
        for key in ("n_validated", "precision", "recall", "n_flagged"):
            assert got[key] == pytest.approx(want[key], abs=1e-12), \
                f"{name}: {key} drifted at n_validated={want['n_validated']}"


def test_sleeper_detection_improves_with_evidence():
    """Behavioral floor on top of the exact pin: by the end of the
    validation stream the detector must be catching most sleepers."""
    fixture = _load("sleeper-spammers")
    final = fixture["curve"][-1]
    assert final["precision"] >= 0.75
    assert final["recall"] >= 0.75


def test_colluders_evade_unguided_detection():
    """Colluders copying a reasonable leader are *hard* for the rank-one
    detector under a random validation order — the fixture pins that
    weakness so an (intentional) future improvement shows up as a diff,
    and quantifies the gap guided validation closes (the guided run in the
    conformance matrix reaches markedly higher precision)."""
    fixture = _load("colluding-clique")
    final = fixture["curve"][-1]
    assert final["recall"] <= 0.5
