"""Smoke tests: the runnable examples must execute cleanly.

Only the fast examples run here (the strategy-comparison and budget
examples take tens of seconds and are exercised by their underlying
modules' own tests); the interactive tool is import-checked.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout, check=True)
    return result.stdout


def test_quickstart_reaches_perfect_correctness():
    out = run_example("quickstart.py")
    assert "Perfect correctness" in out
    assert "W3" in out  # reliability section printed


def test_spammer_audit_separates_types():
    out = run_example("spammer_audit.py")
    assert "uniform_spammer" in out
    assert "recall" in out


def test_streaming_validation_replays_a_stream():
    out = run_example("streaming_validation.py")
    assert "Stream drained" in out
    assert "Final precision" in out
    assert "(expert)" in out


def test_telemetry_tour_reports_bit_identity():
    out = run_example("telemetry_tour.py")
    assert "bit-identical" in out
    assert "run manifest" in out
    assert "tour/resilience.retry" in out
    assert "L-inf(posteriors, instrumented vs null hub) = 0.0e+00" in out


def test_adversarial_scenarios_conform():
    out = run_example("adversarial_scenarios.py")
    assert "adversarial scenarios" in out
    assert "cross-path conformance" in out
    assert "colluding-clique" in out
    assert "0.0e+00" in out  # streaming replay is bit-for-bit


@pytest.mark.parametrize("name", [
    "quickstart.py",
    "image_tagging_validation.py",
    "spammer_audit.py",
    "budget_planning.py",
    "interactive_validation.py",
    "streaming_validation.py",
    "adversarial_scenarios.py",
    "telemetry_tour.py",
])
def test_examples_compile(name):
    source = (EXAMPLES / name).read_text()
    compile(source, name, "exec")
