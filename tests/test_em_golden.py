"""Golden-fixture regression: majority-initialized Dawid–Skene numerics.

The streaming engine's bit-for-bit guarantee makes the kernel a contract:
any refactor that silently changes its floating-point behaviour would break
streaming/batch agreement without failing a behavioural test. These fixtures
pin the exact outputs of ``DawidSkeneEM(init="majority")`` on two small
matrices (Table 1 of the paper and a sparse binary set), so numeric drift
fails loudly with a diff instead of surfacing as downstream flakiness.

If a change to the kernel is *intentional* (e.g. a new smoothing default),
regenerate the constants below with the snippet in each test's docstring
and call the change out in the commit message.
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.em import DawidSkeneEM

ATOL = 1e-9

TABLE1_ASSIGNMENT = np.array([
    [9.708779098775e-07, 9.999980486307e-01, 9.708815068843e-07,
     9.609897812329e-09],
    [9.610794248965e-09, 9.709030195454e-07, 9.999990098763e-01,
     9.609869892660e-09],
    [9.609841175899e-09, 9.609838836849e-09, 9.609843611583e-09,
     9.999999711705e-01],
    [9.999990099060e-01, 9.708733607868e-07, 9.610806836958e-09,
     9.609868558767e-09],
])

TABLE1_PRIORS = np.array([0.25, 0.25, 0.25, 0.25])

TABLE1_CONFUSION_W0 = np.array([
    [0.009615393855575, 0.009616318151795, 0.009615393856491,
     0.971152894136139],
    [0.009615393855458, 0.971151969821412, 0.009616318175824,
     0.009616318147306],
    [0.009615393855818, 0.009616318155494, 0.971152894131944,
     0.009615393856744],
    [0.971153818433045, 0.009615393855670, 0.009615393855643,
     0.009615393855642],
])

SPARSE_BINARY_ASSIGNMENT = np.array([
    [9.799053840406987e-01, 2.009461595930127e-02],
    [5.009694520831870e-03, 9.949903054791681e-01],
    [9.899989239602157e-01, 1.000107603978426e-02],
    [9.920082417849470e-05, 9.999007991758215e-01],
    [9.998992377852772e-01, 1.007622147228228e-04],
])

SPARSE_BINARY_PRIORS = np.array([0.59498248822624, 0.40501751177376])

SPARSE_BINARY_CONFUSIONS = np.array([
    [[0.994955146221469, 0.005044853778531],
     [0.019655126275396, 0.980344873724604]],
    [[0.664428046483573, 0.335571953516427],
     [0.503692945997688, 0.496307054002312]],
    [[0.503712119817660, 0.496287880182340],
     [0.004963308586612, 0.995036691413388]],
    [[0.990051105279545, 0.009948894720455],
     [0.501257000839764, 0.498742999160236]],
])


def test_table1_majority_init_is_pinned(table1_answer_set):
    """Regenerate with: DawidSkeneEM(init="majority").fit(table1_answer_set)."""
    result = DawidSkeneEM(init="majority").fit(table1_answer_set)
    assert result.n_em_iterations == 5
    assert np.allclose(result.assignment, TABLE1_ASSIGNMENT, atol=ATOL)
    assert np.allclose(result.priors, TABLE1_PRIORS, atol=ATOL)
    assert np.allclose(result.confusions[0], TABLE1_CONFUSION_W0, atol=ATOL)
    # Checksums over the full confusion stack catch drift in any worker.
    assert result.confusions.sum() == np.float64(20.0)
    weights = np.arange(result.confusions.size).reshape(
        result.confusions.shape)
    assert np.isclose((result.confusions * weights).sum(),
                      789.0384615384855, atol=1e-7)
    assert result.map_labels().tolist() == [1, 2, 3, 0]


def test_sparse_binary_majority_init_is_pinned():
    """Regenerate with: DawidSkeneEM(init="majority").fit(answers) below."""
    matrix = np.array([
        [0, 0, 1, MISSING],
        [1, 1, 1, 0],
        [0, 1, MISSING, 0],
        [1, 0, 1, 1],
        [0, 0, 0, MISSING],
    ])
    answers = AnswerSet(matrix, labels=("T", "F"))
    result = DawidSkeneEM(init="majority").fit(answers)
    assert result.n_em_iterations == 28
    assert np.allclose(result.assignment, SPARSE_BINARY_ASSIGNMENT, atol=ATOL)
    assert np.allclose(result.priors, SPARSE_BINARY_PRIORS, atol=ATOL)
    assert np.allclose(result.confusions, SPARSE_BINARY_CONFUSIONS, atol=ATOL)


def test_golden_outputs_are_reproducible_across_runs(table1_answer_set):
    """Two fresh fits are bit-for-bit identical (no hidden global state)."""
    first = DawidSkeneEM(init="majority").fit(table1_answer_set)
    second = DawidSkeneEM(init="majority").fit(table1_answer_set)
    assert np.array_equal(first.assignment, second.assignment)
    assert np.array_equal(first.confusions, second.confusions)
