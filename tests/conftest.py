"""Shared fixtures: the paper's worked examples and small simulated crowds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answer_set import AnswerSet
from repro.core.validation import ExpertValidation
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.workers.types import WorkerType


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running conformance/stress tests, excluded from the "
        "CI scenarios job via -m 'not slow'")


@pytest.fixture
def table1_answer_set() -> AnswerSet:
    """Table 1 of the paper: 5 workers × 4 objects, labels 1–4.

    Correct labels are (2, 3, 1, 2) → codes (1, 2, 0, 1). Majority voting
    gets o1/o2 right, ties on o3, and is wrong on o4.
    """
    matrix = np.array([
        [1, 2, 1, 1, 2],
        [2, 1, 2, 1, 2],
        [0, 3, 0, 3, 2],
        [3, 0, 1, 0, 2],
    ])
    return AnswerSet(matrix, labels=("1", "2", "3", "4"))


@pytest.fixture
def table1_gold() -> np.ndarray:
    return np.array([1, 2, 0, 1])


@pytest.fixture
def table2_answer_sets() -> AnswerSet:
    """Table 2: workers A (random spammer) and A' (uniform spammer) on eight
    binary objects with gold (T,T,F,F,T,F,T,F) → codes (0,0,1,1,0,1,0,1)."""
    # columns: A, A'
    matrix = np.array([
        [0, 1],
        [1, 1],
        [0, 1],
        [1, 1],
        [0, 1],
        [1, 1],
        [1, 1],
        [0, 1],
    ])
    return AnswerSet(matrix, labels=("T", "F"), workers=("A", "Aprime"))


@pytest.fixture
def table2_gold() -> np.ndarray:
    return np.array([0, 0, 1, 1, 0, 1, 0, 1])


@pytest.fixture
def empty_validation(table1_answer_set: AnswerSet) -> ExpertValidation:
    return ExpertValidation.empty_for(table1_answer_set)


@pytest.fixture
def small_crowd():
    """A 30×12 binary crowd with a clear honest majority (no flips)."""
    config = CrowdConfig(
        n_objects=30, n_workers=12, n_labels=2, reliability=0.8,
        population={
            WorkerType.NORMAL: 0.7,
            WorkerType.SLOPPY: 0.1,
            WorkerType.UNIFORM_SPAMMER: 0.1,
            WorkerType.RANDOM_SPAMMER: 0.1,
        },
    )
    return simulate_crowd(config, rng=7)


@pytest.fixture
def spammy_crowd():
    """A 40×20 binary crowd with 40 % spammers (the paper's worst case)."""
    config = CrowdConfig(
        n_objects=40, n_workers=20, n_labels=2, reliability=0.75,
        population={
            WorkerType.NORMAL: 0.5,
            WorkerType.SLOPPY: 0.1,
            WorkerType.UNIFORM_SPAMMER: 0.2,
            WorkerType.RANDOM_SPAMMER: 0.2,
        },
    )
    return simulate_crowd(config, rng=11)


@pytest.fixture
def multiclass_crowd():
    """A 25×15 four-label crowd for non-binary code paths."""
    config = CrowdConfig(n_objects=25, n_workers=15, n_labels=4,
                         reliability=0.7)
    return simulate_crowd(config, rng=13)
