"""Tests for faulty-worker detection (§5.3) and reliability stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.validation import ExpertValidation
from repro.workers.reliability import inter_worker_agreement, worker_stats
from repro.workers.spammer_detection import (
    DetectionResult,
    SpammerDetector,
    detection_precision_recall,
)
from repro.workers.types import WorkerType


def full_validation(gold: np.ndarray, n_labels: int) -> ExpertValidation:
    return ExpertValidation.from_mapping(
        {i: int(label) for i, label in enumerate(gold)}, gold.size, n_labels)


class TestSpammerDetector:
    def test_table2_detection(self, table2_answer_sets, table2_gold):
        """Both Table 2 archetypes are flagged once fully validated."""
        detector = SpammerDetector(tau_s=0.2)
        result = detector.detect(table2_answer_sets,
                                 full_validation(table2_gold, 2))
        assert bool(result.spammer_mask[0])   # A: random spammer
        assert bool(result.spammer_mask[1])   # A': uniform spammer
        assert result.n_faulty == 2
        assert result.faulty_ratio() == 1.0

    def test_honest_worker_not_flagged(self):
        gold = np.array([0, 1, 0, 1, 0, 1])
        matrix = gold[:, None]  # one perfectly accurate worker
        answers = AnswerSet(matrix, labels=("T", "F"))
        result = SpammerDetector().detect(answers, full_validation(gold, 2))
        assert not result.faulty_mask.any()
        assert result.spammer_scores[0] == pytest.approx(1.0)

    def test_sloppy_worker_flagged_by_error_rate(self):
        gold = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        matrix = (1 - gold)[:, None]  # answers always wrong
        answers = AnswerSet(matrix, labels=("T", "F"))
        result = SpammerDetector(tau_p=0.8).detect(
            answers, full_validation(gold, 2))
        assert bool(result.sloppy_mask[0])
        assert result.error_rates[0] == pytest.approx(1.0)

    def test_min_validated_guards_table3_case(self):
        """Table 3: worker B looks like a random spammer on 4 early
        validations; requiring more evidence prevents the false flag."""
        gold = np.array([0, 0, 1, 1, 0, 0])
        matrix = np.array([[0], [1], [0], [1], [0], [0]])  # B's answers
        answers = AnswerSet(matrix, labels=("T", "F"))
        early = ExpertValidation.from_mapping(
            {i: int(gold[i]) for i in range(4)}, 6, 2)
        eager = SpammerDetector(min_validated=1).detect(answers, early)
        cautious = SpammerDetector(min_validated=5).detect(answers, early)
        assert bool(eager.spammer_mask[0])       # the paper's false positive
        assert not cautious.spammer_mask[0]      # guarded by evidence bound
        # With all six validations B clears the threshold either way.
        late = full_validation(gold, 2)
        assert not SpammerDetector(min_validated=1).detect(
            answers, late).spammer_mask[0]

    def test_no_validations_flags_nobody(self, table2_answer_sets):
        result = SpammerDetector().detect(
            table2_answer_sets,
            ExpertValidation.empty_for(table2_answer_sets))
        assert not result.faulty_mask.any()
        assert np.all(np.isinf(result.spammer_scores))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SpammerDetector(tau_s=-0.1)
        with pytest.raises(ValueError):
            SpammerDetector(tau_p=1.5)
        with pytest.raises(ValueError):
            SpammerDetector(min_validated=-1)

    def test_higher_tau_s_flags_more(self, spammy_crowd):
        gold = spammy_crowd.gold
        answers = spammy_crowd.answer_set
        validation = full_validation(gold, 2)
        low = SpammerDetector(tau_s=0.1).detect(answers, validation)
        high = SpammerDetector(tau_s=0.5).detect(answers, validation)
        assert high.spammer_mask.sum() >= low.spammer_mask.sum()

    def test_detection_on_simulated_spammers(self, spammy_crowd):
        """With full validation, detection recall on true spammers is
        high and honest normal workers are mostly spared."""
        result = SpammerDetector(tau_s=0.2).detect(
            spammy_crowd.answer_set, full_validation(spammy_crowd.gold, 2))
        precision, recall = detection_precision_recall(
            result.spammer_mask, spammy_crowd.spammer_mask)
        assert recall >= 0.75
        assert precision >= 0.6


class TestDetectionResult:
    def test_masks_and_indices(self):
        result = DetectionResult(
            spammer_scores=np.array([0.05, 1.0, np.inf]),
            error_rates=np.array([0.5, 0.9, 0.0]),
            evidence=np.array([4, 4, 0]),
            spammer_mask=np.array([True, False, False]),
            sloppy_mask=np.array([False, True, False]),
        )
        assert result.faulty_mask.tolist() == [True, True, False]
        assert result.faulty_indices.tolist() == [0, 1]
        assert result.n_faulty == 2
        assert result.faulty_ratio() == pytest.approx(2 / 3)


class TestPrecisionRecall:
    def test_perfect_detection(self):
        mask = np.array([True, False, True])
        assert detection_precision_recall(mask, mask) == (1.0, 1.0)

    def test_empty_denominators(self):
        none = np.zeros(3, dtype=bool)
        some = np.array([True, False, False])
        assert detection_precision_recall(none, some) == (0.0, 0.0)
        assert detection_precision_recall(some, none) == (0.0, 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            detection_precision_recall(np.zeros(2, bool), np.zeros(3, bool))


class TestWorkerStats:
    def test_accuracy_against_gold(self, table2_answer_sets, table2_gold):
        stats = worker_stats(table2_answer_sets, table2_gold)
        assert stats.n_answers.tolist() == [8, 8]
        assert stats.accuracy[0] == pytest.approx(0.5)   # A random
        assert stats.accuracy[1] == pytest.approx(0.5)   # A' uniform on 50/50
        sens_spec = stats.sensitivity_specificity()
        assert sens_spec.shape == (2, 2)
        # A' answers F always: sensitivity 0, specificity 1
        assert sens_spec[1].tolist() == [0.0, 1.0]

    def test_worker_without_answers_has_nan_accuracy(self):
        answers = AnswerSet(np.array([[0, MISSING]]), labels=("a", "b"))
        stats = worker_stats(answers, np.array([0]))
        assert np.isnan(stats.accuracy[1])

    def test_gold_shape_checked(self, table2_answer_sets):
        with pytest.raises(ValueError):
            worker_stats(table2_answer_sets, np.array([0, 1]))


class TestAgreement:
    def test_unanimous_crowd(self):
        answers = AnswerSet(np.zeros((4, 3), dtype=int), labels=("a", "b"))
        assert inter_worker_agreement(answers) == pytest.approx(1.0)

    def test_single_answers_are_nan(self):
        answers = AnswerSet(np.array([[0, MISSING]]), labels=("a", "b"))
        assert np.isnan(inter_worker_agreement(answers))

    def test_simulated_spammers_lower_agreement(self, small_crowd,
                                                spammy_crowd):
        assert inter_worker_agreement(spammy_crowd.answer_set) <= \
            inter_worker_agreement(small_crowd.answer_set) + 0.05


class TestWorkerTypes:
    def test_faulty_classification(self):
        assert WorkerType.SLOPPY.is_faulty
        assert WorkerType.UNIFORM_SPAMMER.is_faulty
        assert WorkerType.RANDOM_SPAMMER.is_faulty
        assert not WorkerType.NORMAL.is_faulty
        assert not WorkerType.RELIABLE.is_faulty

    def test_spammer_classification(self):
        assert WorkerType.UNIFORM_SPAMMER.is_spammer
        assert not WorkerType.SLOPPY.is_spammer
