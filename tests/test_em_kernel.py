"""Unit and property tests for the EM kernel (Eq. 1–5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import em_kernel
from repro.core.answer_set import MISSING, AnswerSet


def encode(matrix, n_labels=2):
    labels = tuple(f"l{i}" for i in range(n_labels))
    return em_kernel.encode_answers(AnswerSet(matrix, labels))


class TestEncoding:
    def test_flattening(self):
        encoded = encode(np.array([[0, MISSING], [1, 1]]))
        assert encoded.n_answers == 3
        assert encoded.object_index.tolist() == [0, 1, 1]
        assert encoded.worker_index.tolist() == [0, 0, 1]
        assert encoded.label_index.tolist() == [0, 1, 1]

    def test_empty_matrix(self):
        encoded = encode(np.full((2, 2), MISSING))
        assert encoded.n_answers == 0


class TestInitialEstimates:
    def test_majority_init_normalizes_votes(self):
        encoded = encode(np.array([[0, 0, 1], [MISSING, MISSING, MISSING]]))
        initial = em_kernel.initial_assignment_majority(encoded)
        assert np.allclose(initial[0], [2 / 3, 1 / 3])
        assert np.allclose(initial[1], [0.5, 0.5])  # no votes -> uniform

    def test_uniform_init(self):
        encoded = encode(np.array([[0, 1]]))
        assert np.allclose(em_kernel.initial_assignment_uniform(encoded), 0.5)

    def test_random_init_is_distribution_and_seeded(self):
        encoded = encode(np.array([[0, 1], [1, 0]]))
        a = em_kernel.initial_assignment_random(encoded,
                                                np.random.default_rng(3))
        b = em_kernel.initial_assignment_random(encoded,
                                                np.random.default_rng(3))
        assert np.allclose(a, b)
        assert np.allclose(a.sum(axis=1), 1.0)


class TestSteps:
    def test_clamp_overwrites_rows(self):
        assignment = np.full((3, 2), 0.5)
        em_kernel.clamp_validated(assignment, np.array([1]), np.array([0]))
        assert assignment[1].tolist() == [1.0, 0.0]
        assert assignment[0].tolist() == [0.5, 0.5]

    def test_priors_eq3(self):
        assignment = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        priors = em_kernel.estimate_priors(assignment)
        assert np.allclose(priors, [0.5, 0.5])

    def test_priors_empty_assignment(self):
        priors = em_kernel.estimate_priors(np.empty((0, 3)))
        assert np.allclose(priors, 1 / 3)

    def test_m_step_counts_eq5(self):
        # One worker answered object0=label0, object1=label1; U is one-hot
        # with truths (0, 0): F(0,0) counts 1, F(0,1) counts 1.
        encoded = encode(np.array([[0], [1]]))
        assignment = np.array([[1.0, 0.0], [1.0, 0.0]])
        confusions = em_kernel.m_step(encoded, assignment, smoothing=0.0)
        assert np.allclose(confusions[0, 0], [0.5, 0.5])
        assert np.allclose(confusions[0, 1], [0.5, 0.5])  # no evidence row

    def test_e_step_prefers_consistent_label(self):
        # Two perfectly accurate workers agree on label 0.
        encoded = encode(np.array([[0, 0]]))
        confusions = np.stack([np.eye(2) * 0.98 + 0.01,
                               np.eye(2) * 0.98 + 0.01])
        assignment = em_kernel.e_step(encoded, confusions,
                                      np.array([0.5, 0.5]))
        assert assignment[0, 0] > 0.99

    def test_e_step_object_without_answers_gets_priors(self):
        encoded = encode(np.array([[0], [MISSING]]))
        confusions = np.stack([np.eye(2) * 0.9 + 0.05])
        priors = np.array([0.3, 0.7])
        assignment = em_kernel.e_step(encoded, confusions, priors)
        assert np.allclose(assignment[1], priors / priors.sum())


class TestRunEM:
    def test_converges_on_clean_data(self):
        rng = np.random.default_rng(0)
        gold = rng.integers(0, 2, 40)
        matrix = np.tile(gold[:, None], (1, 5))
        # inject a few mistakes for worker 4
        matrix[::7, 4] = 1 - matrix[::7, 4]
        encoded = encode(matrix)
        result = em_kernel.run_em(
            encoded, em_kernel.initial_assignment_majority(encoded))
        assert result.converged
        assert np.array_equal(np.argmax(result.assignment, axis=1), gold)

    def test_validated_objects_stay_clamped(self):
        matrix = np.array([[0, 0, 0], [1, 1, 1]])
        encoded = encode(matrix)
        result = em_kernel.run_em(
            encoded, em_kernel.initial_assignment_majority(encoded),
            validated_objects=np.array([0]), validated_labels=np.array([1]))
        assert result.assignment[0].tolist() == [0.0, 1.0]

    def test_max_iter_respected(self):
        matrix = np.array([[0, 1], [1, 0]])
        encoded = encode(matrix)
        result = em_kernel.run_em(
            encoded, em_kernel.initial_assignment_uniform(encoded),
            max_iter=1)
        assert result.n_iterations == 1

    def test_invalid_max_iter(self):
        encoded = encode(np.array([[0]]))
        with pytest.raises(ValueError):
            em_kernel.run_em(encoded,
                             em_kernel.initial_assignment_uniform(encoded),
                             max_iter=0)

    def test_initial_assignment_not_mutated(self):
        encoded = encode(np.array([[0, 0], [1, 1]]))
        initial = em_kernel.initial_assignment_majority(encoded)
        before = initial.copy()
        em_kernel.run_em(encoded, initial,
                         validated_objects=np.array([0]),
                         validated_labels=np.array([1]))
        assert np.array_equal(initial, before)

    def test_empty_answer_set(self):
        encoded = encode(np.full((3, 2), MISSING))
        result = em_kernel.run_em(
            encoded, em_kernel.initial_assignment_uniform(encoded))
        assert np.allclose(result.assignment, 0.5)


@given(
    n=st.integers(min_value=1, max_value=8),
    k=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_property_em_outputs_are_distributions(n, k, m, seed):
    """After any EM run: U rows sum to 1, confusions are row-stochastic,
    priors are a distribution."""
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, m, size=(n, k))
    labels = tuple(f"l{i}" for i in range(m))
    encoded = em_kernel.encode_answers(AnswerSet(matrix, labels))
    result = em_kernel.run_em(
        encoded, em_kernel.initial_assignment_majority(encoded), max_iter=20)
    assert np.allclose(result.assignment.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(result.assignment >= -1e-12)
    assert np.allclose(result.confusions.sum(axis=-1), 1.0, atol=1e-9)
    assert np.allclose(result.priors.sum(), 1.0, atol=1e-9)


@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_property_clamped_objects_survive_any_run(n, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2, size=(n, 3))
    encoded = em_kernel.encode_answers(AnswerSet(matrix, ("a", "b")))
    obj = int(rng.integers(n))
    label = int(rng.integers(2))
    result = em_kernel.run_em(
        encoded, em_kernel.initial_assignment_majority(encoded),
        validated_objects=np.array([obj]), validated_labels=np.array([label]))
    assert result.assignment[obj, label] == 1.0
