"""Tests for the §6.8 cost model: EV/WO curves and budget allocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel import (
    AllocationPoint,
    CostParams,
    allocation_curve,
    best_allocation,
    best_allocation_with_time,
    budget_for_ratio,
    ev_cost_curve,
    ev_cost_per_object,
    ev_total_cost,
    frontier_entropies,
    route_budget,
    split_budget,
    wo_cost_curve,
    wo_total_cost,
)
from repro.errors import CostModelError
from repro.simulation import CrowdConfig, simulate_crowd
from repro.workers.types import WorkerType


@pytest.fixture(scope="module")
def pool_crowd():
    """A 40-object campaign with a deep worker pool to buy answers from."""
    config = CrowdConfig(
        n_objects=40, n_workers=30, answers_per_object=24,
        reliability=0.75,
        population={
            WorkerType.NORMAL: 0.6,
            WorkerType.SLOPPY: 0.2,
            WorkerType.UNIFORM_SPAMMER: 0.1,
            WorkerType.RANDOM_SPAMMER: 0.1,
        })
    return simulate_crowd(config, rng=21)


class TestCostArithmetic:
    def test_ev_and_wo_totals(self):
        params = CostParams(theta=25, phi0=13)
        assert ev_total_cost(params, 100, 20) == 25 * 20 + 100 * 13
        assert wo_total_cost(20, 100) == 2000
        assert ev_cost_per_object(params, 100, 20) == pytest.approx(18.0)

    def test_parameter_validation(self):
        with pytest.raises(CostModelError):
            CostParams(theta=0)
        with pytest.raises(CostModelError):
            CostParams(theta=10, phi0=-1)
        with pytest.raises(CostModelError):
            ev_total_cost(CostParams(), 10, -1)
        with pytest.raises(CostModelError):
            wo_total_cost(-1, 10)

    def test_budget_for_ratio_bounds(self):
        assert budget_for_ratio(0.4, 25, 100) == pytest.approx(1000.0)
        with pytest.raises(CostModelError):
            budget_for_ratio(0.01, 25, 100)  # below 1/theta
        with pytest.raises(CostModelError):
            budget_for_ratio(1.2, 25, 100)

    def test_split_budget(self):
        split = split_budget(1000, 0.75, theta=25, n_objects=50)
        assert split.phi0 == 15
        assert split.n_validations == 10
        assert split.crowd_share == 0.75

    def test_split_budget_minimum_one_answer(self):
        split = split_budget(500, 0.0, theta=25, n_objects=50)
        assert split.phi0 == 1
        assert split.n_validations == 18

    def test_split_budget_infeasible(self):
        with pytest.raises(CostModelError):
            split_budget(10, 0.5, theta=25, n_objects=50)


class TestCostCurves:
    def test_wo_curve_shape(self, pool_crowd):
        points = wo_cost_curve(pool_crowd, phi0=8, phis=[8, 14, 20], rng=1)
        assert [p.cost_per_object for p in points] == [8, 14, 20]
        assert points[0].improvement == pytest.approx(
            0.0, abs=0.35)  # restored sample differs slightly from baseline
        for point in points:
            assert 0.0 <= point.precision <= 1.0

    def test_wo_curve_rejects_phi_below_phi0(self, pool_crowd):
        with pytest.raises(CostModelError):
            wo_cost_curve(pool_crowd, phi0=10, phis=[5], rng=0)

    def test_ev_curve_monotone_cost(self, pool_crowd):
        params = CostParams(theta=25, phi0=8)
        points = ev_cost_curve(pool_crowd, params, [0, 5, 10], rng=1)
        costs = [p.cost_per_object for p in points]
        assert costs == sorted(costs)
        assert points[0].detail == 0
        assert points[-1].detail == 10

    def test_ev_beats_wo_at_high_spend(self, pool_crowd):
        """The paper's headline: for θ=25 the EV strategy reaches higher
        precision than WO at comparable per-object cost."""
        params = CostParams(theta=25, phi0=8)
        ev = ev_cost_curve(pool_crowd, params,
                           [0, 8, 16, 24, 32, 40], rng=2)
        wo = wo_cost_curve(pool_crowd, phi0=8, phis=[8, 12, 16, 20, 24],
                           rng=2)
        assert max(p.precision for p in ev) >= \
            max(p.precision for p in wo)

    def test_ev_curve_invalid_checkpoints(self, pool_crowd):
        with pytest.raises(CostModelError):
            ev_cost_curve(pool_crowd, CostParams(), [])
        with pytest.raises(CostModelError):
            ev_cost_curve(pool_crowd, CostParams(), [-1])


class TestAllocation:
    def test_curve_and_optimum(self, pool_crowd):
        points = allocation_curve(pool_crowd, rho=0.4, theta=25,
                                  shares=[0.3, 0.5, 0.75, 1.0], rng=3)
        assert len(points) >= 3
        best = best_allocation(points)
        assert best.precision == max(p.precision for p in points)
        # A share of 1.0 is the WO special case: zero validations.
        full_crowd = [p for p in points if p.crowd_share == 1.0]
        assert full_crowd and full_crowd[0].n_validations == 0

    def test_mixed_allocation_beats_pure_crowd(self, pool_crowd):
        """Figure 13's message: some expert budget beats none."""
        points = allocation_curve(pool_crowd, rho=0.5, theta=25,
                                  shares=[0.4, 0.6, 0.8, 1.0], rng=4)
        best = best_allocation(points)
        pure = [p for p in points if p.crowd_share == 1.0][0]
        assert best.precision >= pure.precision

    def test_time_constraint_restricts_region(self, pool_crowd):
        points = allocation_curve(pool_crowd, rho=0.4, theta=25,
                                  shares=[0.3, 0.5, 0.75, 1.0], rng=5)
        constrained = best_allocation_with_time(points, max_validations=5)
        assert all(p.n_validations <= 5 for p in constrained.feasible)
        assert constrained.optimum.n_validations <= 5
        assert 0.0 <= constrained.boundary_share <= 1.0

    def test_time_constraint_infeasible(self):
        points = [AllocationPoint(0.5, 10, 20, 0.9)]
        with pytest.raises(CostModelError):
            best_allocation_with_time(points, max_validations=5)

    def test_empty_points_rejected(self):
        with pytest.raises(CostModelError):
            best_allocation([])

    def test_capped_crowd_budget_rolls_over_to_expert(self, pool_crowd):
        """Regression: budget stranded by the φ₀ cap must buy validations.

        With ρ·θ = 30 > 24 answers per object, a crowd share of 1.0
        affords φ₀ = 30 but the campaign only holds 24 — the stranded
        (30 − 24)·n units previously evaporated, reporting zero expert
        validations despite an unspent budget. They now roll over at rate
        θ into expert effort.
        """
        points = allocation_curve(pool_crowd, rho=1.0, theta=30,
                                  shares=[1.0], rng=6)
        assert len(points) == 1
        point = points[0]
        assert point.phi0 == 24  # capped to what the campaign holds
        # (30 - 24) * 40 / 30 = 8 validations' worth of stranded budget.
        assert point.n_validations == 8

    def test_uncapped_full_crowd_share_still_zero_validations(
            self, pool_crowd):
        points = allocation_curve(pool_crowd, rho=0.4, theta=25,
                                  shares=[1.0], rng=6)
        assert points[0].n_validations == 0


class TestRouteBudget:
    @staticmethod
    def _session(crowd, n_validated=0, concluded=()):
        from repro.streaming.session import ValidationSession
        session = ValidationSession.from_answer_set(crowd.answer_set)
        session.conclude()
        for obj in range(n_validated):
            session.add_validation(obj, int(crowd.gold[obj]))
        for obj in concluded:
            session.conclude_object(obj)
        return session

    def test_frontier_excludes_validated_and_concluded(self, pool_crowd):
        session = self._session(pool_crowd, n_validated=5,
                                concluded=(10, 11, 12))
        gains = frontier_entropies(session)
        assert gains.size == 40 - 5 - 3
        assert np.all(np.diff(gains) <= 0)  # descending

    def test_routes_toward_uncertain_frontier(self, pool_crowd):
        open_session = self._session(pool_crowd)
        drained = self._session(pool_crowd,
                                concluded=range(40))  # fully concluded
        route = route_budget([open_session, drained], total_budget=6)
        assert route.allocations == (6, 0)
        assert route.spent == 6

    def test_budget_larger_than_frontiers(self, pool_crowd):
        session = self._session(pool_crowd, n_validated=38)
        route = route_budget([session], total_budget=10)
        assert route.allocations == (2,)
        assert route.spent == 2

    def test_greedy_matches_descending_gain_order(self, pool_crowd):
        a = self._session(pool_crowd)
        b = self._session(pool_crowd, n_validated=20)
        budget = 7
        route = route_budget([a, b], budget)
        # The greedy objective equals taking the budget highest gains
        # from the merged pool — exchange-argument optimality.
        merged = np.sort(np.concatenate([frontier_entropies(a),
                                         frontier_entropies(b)]))[::-1]
        assert route.expected_gain == pytest.approx(float(merged[:budget].sum()))
        assert sum(route.allocations) == budget

    def test_deterministic_and_validated(self, pool_crowd):
        session = self._session(pool_crowd)
        first = route_budget([session, session], 5)
        second = route_budget([session, session], 5)
        assert first == second
        with pytest.raises(CostModelError):
            route_budget([session], -1)
        assert route_budget([], 5).spent == 0
