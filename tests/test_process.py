"""Integration tests for the validation process (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answer_set import AnswerSet
from repro.errors import BudgetExhaustedError, GoalError, GuidanceError
from repro.experts.simulated import NoisyExpert, OracleExpert
from repro.guidance import (
    HybridStrategy,
    InformationGainStrategy,
    MaxEntropyStrategy,
    RandomStrategy,
    WorkerDrivenStrategy,
)
from repro.process import (
    AllValidated,
    FaultyWorkerFilter,
    NeverSatisfied,
    PrecisionReached,
    UncertaintyBelow,
    ValidationProcess,
    dynamic_weight,
)
from repro.workers.spammer_detection import SpammerDetector


class TestDynamicWeight:
    def test_eq15_formula(self):
        import math
        eps, ratio, f = 0.4, 0.3, 0.5
        expected = 1.0 - math.exp(-(eps * (1 - f) + ratio * f))
        assert dynamic_weight(eps, ratio, f) == pytest.approx(expected)

    def test_bounds(self):
        assert dynamic_weight(0.0, 0.0, 0.0) == 0.0
        assert 0.0 < dynamic_weight(1.0, 1.0, 0.5) < 1.0

    def test_early_iterations_dominated_by_error_rate(self):
        early_err = dynamic_weight(0.9, 0.0, 0.05)
        early_spam = dynamic_weight(0.0, 0.9, 0.05)
        assert early_err > early_spam

    def test_late_iterations_dominated_by_spam_ratio(self):
        late_err = dynamic_weight(0.9, 0.0, 0.95)
        late_spam = dynamic_weight(0.0, 0.9, 0.95)
        assert late_spam > late_err

    def test_input_validation(self):
        with pytest.raises(ValueError):
            dynamic_weight(1.5, 0.0, 0.0)


class TestGoals:
    def test_precision_goal_requires_gold(self, small_crowd):
        # The misconfiguration surfaces at construction, not mid-loop.
        with pytest.raises(GoalError, match="gold"):
            ValidationProcess(
                small_crowd.answer_set, OracleExpert(small_crowd.gold),
                strategy=MaxEntropyStrategy(), goal=PrecisionReached(1.0),
                rng=0)  # no gold passed

    def test_precision_goal_requires_gold_inside_combined_goal(
            self, small_crowd):
        goal = NeverSatisfied() | (PrecisionReached(1.0) & AllValidated())
        with pytest.raises(GoalError, match="PrecisionReached"):
            ValidationProcess(
                small_crowd.answer_set, OracleExpert(small_crowd.gold),
                strategy=MaxEntropyStrategy(), goal=goal, rng=0)

    def test_uncertainty_goal(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(),
            goal=UncertaintyBelow(0.01), budget=30,
            gold=small_crowd.gold, rng=0)
        report = process.run()
        assert report.goal_reached or report.total_effort == 30

    def test_all_validated_goal(self, table1_answer_set, table1_gold):
        process = ValidationProcess(
            table1_answer_set, OracleExpert(table1_gold),
            strategy=MaxEntropyStrategy(), goal=AllValidated(),
            budget=10, gold=table1_gold, rng=0)
        report = process.run()
        assert process.validation.count == 4
        assert report.goal_reached

    def test_goal_combinators(self, small_crowd):
        goal = UncertaintyBelow(0.0) | PrecisionReached(0.5)
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), goal=goal, budget=30,
            gold=small_crowd.gold, rng=0)
        report = process.run()
        assert report.goal_reached

    def test_goal_parameter_validation(self):
        with pytest.raises(ValueError):
            UncertaintyBelow(-1.0)
        with pytest.raises(ValueError):
            PrecisionReached(1.5)


class TestValidationProcess:
    def test_reaches_perfect_precision_with_oracle(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), goal=PrecisionReached(1.0),
            budget=small_crowd.answer_set.n_objects,
            gold=small_crowd.gold, rng=0)
        report = process.run()
        assert report.final_precision() == 1.0

    def test_budget_respected(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=RandomStrategy(), goal=NeverSatisfied(), budget=5,
            gold=small_crowd.gold, rng=0)
        report = process.run()
        assert report.total_effort == 5
        with pytest.raises(BudgetExhaustedError):
            process.step()

    def test_step_past_exhaustion_raises(self, table1_answer_set,
                                         table1_gold):
        process = ValidationProcess(
            table1_answer_set, OracleExpert(table1_gold),
            strategy=RandomStrategy(), budget=10, gold=table1_gold, rng=0)
        for _ in range(4):
            process.step()
        with pytest.raises(GuidanceError):
            process.step()

    def test_all_strategies_run(self, spammy_crowd):
        for strategy in (RandomStrategy(), MaxEntropyStrategy(),
                         InformationGainStrategy(candidate_limit=5),
                         WorkerDrivenStrategy(candidate_limit=5),
                         HybridStrategy(
                             uncertainty=InformationGainStrategy(
                                 candidate_limit=5),
                             worker=WorkerDrivenStrategy(candidate_limit=5))):
            process = ValidationProcess(
                spammy_crowd.answer_set, OracleExpert(spammy_crowd.gold),
                strategy=strategy, budget=6, gold=spammy_crowd.gold, rng=1)
            report = process.run()
            assert report.total_effort == 6
            assert not np.isnan(report.final_precision())

    def test_records_track_metrics(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), budget=4,
            gold=small_crowd.gold, rng=0)
        report = process.run()
        assert len(report.records) == 4
        first = report.records[0]
        assert first.iteration == 1
        assert 0.0 <= first.error_rate <= 1.0
        assert 0.0 <= first.hybrid_weight < 1.0
        assert first.effort == 1
        assert first.em_iterations >= 1
        assert first.elapsed_seconds >= 0.0

    def test_validated_objects_never_reselected(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=RandomStrategy(), budget=10,
            gold=small_crowd.gold, rng=0)
        report = process.run()
        selected = [r.object_index for r in report.records]
        assert len(selected) == len(set(selected))

    def test_faulty_handling_masks_answers(self, spammy_crowd):
        """Force the worker branch every iteration (weight stays high via
        a noisy start) and check suspects get masked at some point."""
        process = ValidationProcess(
            spammy_crowd.answer_set, OracleExpert(spammy_crowd.gold),
            strategy=HybridStrategy(
                uncertainty=MaxEntropyStrategy(),
                worker=WorkerDrivenStrategy(candidate_limit=5)),
            detector=SpammerDetector(tau_s=0.35),
            budget=20, gold=spammy_crowd.gold, rng=3)
        report = process.run()
        assert report.total_effort == 20
        # detection ratio recorded and in range
        assert all(0.0 <= r.spammer_ratio <= 1.0 for r in report.records)

    def test_handle_faulty_disabled(self, spammy_crowd):
        process = ValidationProcess(
            spammy_crowd.answer_set, OracleExpert(spammy_crowd.gold),
            strategy=MaxEntropyStrategy(), handle_faulty=False,
            budget=5, gold=spammy_crowd.gold, rng=0)
        process.run()
        assert process.faulty_filter.suspected == frozenset()

    def test_gold_shape_checked(self, table1_answer_set):
        with pytest.raises(ValueError, match="gold"):
            ValidationProcess(table1_answer_set, OracleExpert([0]),
                              gold=np.array([0]), rng=0)

    def test_invalid_budget_and_interval(self, table1_answer_set,
                                         table1_gold):
        with pytest.raises(ValueError):
            ValidationProcess(table1_answer_set, OracleExpert(table1_gold),
                              budget=-1, rng=0)
        with pytest.raises(ValueError):
            ValidationProcess(table1_answer_set, OracleExpert(table1_gold),
                              confirmation_interval=0, rng=0)

    def test_report_curves_align(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), budget=6,
            gold=small_crowd.gold, rng=0)
        report = process.run()
        assert report.efforts().shape == report.precisions().shape
        assert report.efforts()[0] == 0.0
        assert np.all(np.diff(report.efforts()) >= 0)
        improvements = report.improvements()
        assert improvements[0] == pytest.approx(0.0)


class TestFaultyWorkerFilter:
    def test_handle_and_reinclude(self, table2_answer_sets):
        from repro.workers.spammer_detection import DetectionResult
        filt = FaultyWorkerFilter(persistence=1)
        detection = DetectionResult(
            spammer_scores=np.array([0.0, 1.0]),
            error_rates=np.zeros(2),
            evidence=np.array([4, 4]),
            spammer_mask=np.array([True, False]),
            sloppy_mask=np.zeros(2, dtype=bool))
        filt.handle(detection)
        assert filt.suspected == frozenset({0})
        masked = filt.apply(table2_answer_sets)
        assert masked.answers_per_worker()[0] == 0
        # A later clean detection re-includes the worker.
        clean = DetectionResult(
            spammer_scores=np.array([1.0, 1.0]),
            error_rates=np.zeros(2),
            evidence=np.array([8, 8]),
            spammer_mask=np.zeros(2, dtype=bool),
            sloppy_mask=np.zeros(2, dtype=bool))
        filt.handle(clean)
        assert filt.suspected == frozenset()
        assert filt.apply(table2_answer_sets) is table2_answer_sets
        assert filt.history == [1, 0]

    def test_suspected_mask(self):
        filt = FaultyWorkerFilter()
        assert filt.suspected_mask(3).tolist() == [False, False, False]


class TestNoisyExpertIntegration:
    def test_confirmation_check_repairs_mistakes(self, small_crowd):
        """With a high mistake rate and the confirmation check on, the
        final precision should still be high (the §6.7 robustness claim)."""
        expert = NoisyExpert(small_crowd.gold, 2, mistake_probability=0.3,
                             rng=5)
        process = ValidationProcess(
            small_crowd.answer_set, expert,
            strategy=MaxEntropyStrategy(),
            confirmation_interval=3,
            budget=small_crowd.answer_set.n_objects + 15,
            goal=AllValidated(),
            gold=small_crowd.gold, rng=5)
        report = process.run()
        assert report.final_precision() >= 0.9
