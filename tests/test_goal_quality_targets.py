"""Quality targets end to end: goal, mask, pruning, persistence, routing.

The :class:`~repro.process.goals.QualityTarget` goal concludes objects
whose posterior clears a confidence threshold, records the conclusions in
the session's persistent concluded mask (WAL ``conclude-object`` events,
checkpointed alongside the model), and prunes concluded objects from every
guidance strategy's candidate frontier. The contracts pinned here:

* conclusions are sticky (hysteresis) and revocable only explicitly;
* the mask survives capture/restore, the on-disk store, and kills
  (checkpoint + WAL-tail replay) bit-exactly;
* with no object concluded, frontier pruning is invisible — every
  strategy's selection is bit-identical to the mask-free path (property
  tested across random answer sets);
* with targets enabled, batch and streaming replay stay conformant and
  the batch run stops early;
* :func:`~repro.costmodel.route_budget` steers freed budget toward the
  sessions whose frontiers are still uncertain.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer_set import AnswerSet
from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.errors import GoalError, InvalidValidationError
from repro.experts.simulated import OracleExpert
from repro.guidance import (
    GuidanceContext,
    HybridStrategy,
    InformationGainStrategy,
    MaxEntropyStrategy,
    WorkerDrivenStrategy,
)
from repro.process import (
    NeverSatisfied,
    PrecisionReached,
    QualityTarget,
    ValidationProcess,
    iter_goals,
)
from repro.scenarios import ScenarioRunner, compile_registered
from repro.state import FileSessionStore, MemorySessionStore
from repro.state import store as state_events
from repro.streaming import ValidationSession
from repro.workers.spammer_detection import SpammerDetector


def _session(answer_set) -> ValidationSession:
    session = ValidationSession.from_answer_set(answer_set)
    session.conclude()
    return session


class TestQualityTargetGoal:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="confidence"):
            QualityTarget(0.5)
        with pytest.raises(ValueError, match="confidence"):
            QualityTarget(1.1)
        with pytest.raises(ValueError, match="min_coverage"):
            QualityTarget(0.9, min_coverage=0.0)
        with pytest.raises(ValueError, match="min_coverage"):
            QualityTarget(0.9, min_coverage=1.5)

    def test_newly_concluded_threshold(self):
        target = QualityTarget(0.9)
        assignment = np.array([[0.95, 0.05], [0.6, 0.4], [0.1, 0.9]])
        concluded = np.zeros(3, dtype=bool)
        assert target.newly_concluded(assignment, concluded).tolist() == [0, 2]

    def test_already_concluded_objects_not_re_reported(self):
        target = QualityTarget(0.9)
        assignment = np.array([[0.95, 0.05], [0.92, 0.08]])
        concluded = np.array([True, False])
        assert target.newly_concluded(assignment, concluded).tolist() == [1]

    def test_threshold_robust_to_float_noise(self):
        # 0.9 is not exactly representable; a posterior of 0.9 must count.
        target = QualityTarget(0.9)
        assignment = np.array([[1.0 - 0.1, 0.1]])
        concluded = np.zeros(1, dtype=bool)
        assert target.newly_concluded(assignment, concluded).size == 1


class TestSessionConcludedMask:
    def test_conclude_and_revoke(self, small_crowd):
        session = _session(small_crowd.answer_set)
        assert session.n_concluded == 0
        assert session.conclude_object(3) is True
        assert session.conclude_object(3) is False  # already concluded
        assert session.n_concluded == 1
        assert session.concluded_mask[3]
        assert session.conclude_object(3, revoke=True) is True
        assert session.conclude_object(3, revoke=True) is False
        assert session.n_concluded == 0

    def test_bounds_checked(self, small_crowd):
        session = _session(small_crowd.answer_set)
        with pytest.raises(InvalidValidationError):
            session.conclude_object(-1)
        with pytest.raises(InvalidValidationError):
            session.conclude_object(session.n_objects)

    def test_mask_property_is_a_copy(self, small_crowd):
        session = _session(small_crowd.answer_set)
        session.conclude_object(0)
        mask = session.concluded_mask
        mask[0] = False
        assert session.concluded_mask[0]

    def test_grow_preserves_and_extends_mask(self, small_crowd):
        session = _session(small_crowd.answer_set)
        session.conclude_object(2)
        old_n = session.n_objects
        session.grow(n_objects=old_n + 5)
        mask = session.concluded_mask
        assert mask.size == old_n + 5
        assert mask[2]
        assert not mask[old_n:].any()

    def test_capture_restore_roundtrip(self, small_crowd):
        session = _session(small_crowd.answer_set)
        session.conclude_object(1)
        session.conclude_object(7)
        restored = session.capture_state().restore()
        assert np.array_equal(restored.concluded_mask,
                              session.concluded_mask)
        assert restored.capture_state().equals(session.capture_state())

    def test_empty_mask_normalizes_to_none(self, small_crowd):
        # All-False masks are persisted as None, so checkpoints written
        # before the mask existed load identically to fresh sessions.
        session = _session(small_crowd.answer_set)
        assert session.capture_state().concluded is None
        session.conclude_object(0)
        assert session.capture_state().concluded is not None
        session.conclude_object(0, revoke=True)
        assert session.capture_state().concluded is None


class TestConcludedPersistence:
    def test_file_store_roundtrip(self, small_crowd, tmp_path):
        session = _session(small_crowd.answer_set)
        session.conclude_object(4)
        session.conclude_object(9)
        store = FileSessionStore(tmp_path)
        store.checkpoint(session)
        restored = store.restore().session
        assert np.array_equal(restored.concluded_mask,
                              session.concluded_mask)

    def test_wal_replay_restores_mask(self, small_crowd):
        store = MemorySessionStore()
        session = _session(small_crowd.answer_set)
        store.checkpoint(session)
        # Conclusions arrive only after the checkpoint: WAL tail territory.
        for obj in (2, 5, 2):  # duplicate is a no-op, must replay cleanly
            store.append(state_events.conclude_object_event(obj))
            session.conclude_object(obj)
        store.append(state_events.conclude_object_event(5, revoke=True))
        session.conclude_object(5, revoke=True)
        restored = store.restore().session
        assert np.array_equal(restored.concluded_mask,
                              session.concluded_mask)
        assert restored.concluded_mask[2] and not restored.concluded_mask[5]

    def test_mask_survives_kill(self, small_crowd, tmp_path):
        """Crash/resume: the mask comes back through checkpoint + WAL."""
        store = FileSessionStore(tmp_path)
        session = _session(small_crowd.answer_set)
        session.conclude_object(1)
        store.append(state_events.conclude_object_event(1))
        store.checkpoint(session)  # mask bit 1 in the checkpoint
        store.append(state_events.conclude_object_event(6))
        session.conclude_object(6)  # mask bit 6 only in the WAL tail
        expected = session.concluded_mask
        del session  # the crash
        restored = store.restore().session
        assert np.array_equal(restored.concluded_mask, expected)
        assert restored.concluded_mask[1] and restored.concluded_mask[6]

    def test_old_checkpoints_without_mask_still_load(self, small_crowd,
                                                     tmp_path):
        # A store written by a maskless session produces has_concluded
        # False; restore yields an all-False mask, not an error.
        store = FileSessionStore(tmp_path)
        session = _session(small_crowd.answer_set)
        store.checkpoint(session)
        restored = store.restore().session
        assert not restored.concluded_mask.any()


class TestProcessQualityTargets:
    def _process(self, crowd, goal, budget=30, **kwargs):
        return ValidationProcess(
            crowd.answer_set, OracleExpert(crowd.gold),
            strategy=MaxEntropyStrategy(),
            goal=goal, budget=budget, gold=crowd.gold, rng=0, **kwargs)

    def test_target_stops_early_and_concludes(self, small_crowd):
        target = QualityTarget(0.95)
        process = self._process(small_crowd, target)
        report = process.run()
        assert report.goal_reached
        assert process.session.n_concluded == small_crowd.answer_set.n_objects
        # Early stop: strictly fewer validations than the budget allows.
        assert report.total_effort < 30

    def test_concluded_objects_pruned_from_candidates(self, small_crowd):
        target = QualityTarget(0.95, min_coverage=1.0)
        process = self._process(small_crowd, target)
        while not process.is_done():
            record = process.step()
            # The selected object was not concluded when selection ran
            # (unless the frontier was empty and selection fell back).
            assert record.frontier_size > 0
        mask = process.session.concluded_mask
        validated = process.validation.validated_indices()
        unconcluded_unvalidated = [
            o for o in range(small_crowd.answer_set.n_objects)
            if not mask[o] and o not in set(validated.tolist())]
        assert not unconcluded_unvalidated  # goal held: everything settled

    def test_frontier_shrinks_monotonically(self, small_crowd):
        target = QualityTarget(0.9)
        process = self._process(small_crowd, target)
        report = process.run()
        sizes = [r.frontier_size for r in report.records]
        assert all(s > 0 for s in sizes)
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_disabled_targets_pass_no_mask_to_guidance(self, small_crowd):
        process = self._process(small_crowd, NeverSatisfied(), budget=3)
        report = process.run()
        assert process.session.n_concluded == 0
        # frontier_size still recorded: the full unvalidated set.
        assert report.records[0].frontier_size == \
            small_crowd.answer_set.n_objects

    def test_min_coverage_partial_target(self, small_crowd):
        n = small_crowd.answer_set.n_objects
        target = QualityTarget(0.95, min_coverage=0.5)
        process = self._process(small_crowd, target)
        process.run()
        assert process.session.n_concluded >= 0.5 * n

    def test_conclusions_logged_to_wal(self, small_crowd):
        store = MemorySessionStore()
        target = QualityTarget(0.95)
        process = self._process(small_crowd, target, store=store)
        process.run()
        kinds = [r["kind"] for r in store.wal_records()]
        assert "conclude-object" in kinds
        restored = store.restore().session
        assert np.array_equal(restored.concluded_mask,
                              process.session.concluded_mask)

    def test_combined_goal_with_target(self, small_crowd):
        goal = QualityTarget(0.99) | PrecisionReached(1.0)
        process = self._process(small_crowd, goal)
        assert len(process._quality_targets) == 1
        report = process.run()
        assert report.goal_reached

    def test_iter_goals_walks_nested_trees(self):
        goal = (QualityTarget(0.9) & NeverSatisfied()) | PrecisionReached(1.0)
        leaves = [type(g).__name__ for g in iter_goals(goal)]
        assert leaves == ["QualityTarget", "NeverSatisfied",
                          "PrecisionReached"]


class TestCombinedGoalShortCircuit:
    """Pin the documented left-to-right short-circuit order of `&`/`|`."""

    class _Exploding(NeverSatisfied):
        def satisfied(self, process):
            raise AssertionError("goal must not be evaluated")

    class _Always(NeverSatisfied):
        def satisfied(self, process):
            return True

    def test_satisfied_disjunct_short_circuits(self, small_crowd):
        goal = self._Always() | self._Exploding()
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), goal=goal,
            gold=small_crowd.gold, rng=0)
        assert goal.satisfied(process) is True

    def test_failed_conjunct_short_circuits(self, small_crowd):
        goal = NeverSatisfied() & self._Exploding()
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), goal=goal,
            gold=small_crowd.gold, rng=0)
        assert goal.satisfied(process) is False

    def test_left_operand_evaluated_first(self, small_crowd):
        goal = self._Exploding() | self._Always()
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), goal=goal,
            gold=small_crowd.gold, rng=0)
        with pytest.raises(AssertionError, match="must not be evaluated"):
            goal.satisfied(process)


def _strategies():
    return [
        MaxEntropyStrategy(),
        InformationGainStrategy(candidate_limit=4),
        WorkerDrivenStrategy(candidate_limit=4),
        HybridStrategy(),
    ]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10 ** 6), n_objects=st.integers(4, 10),
       n_workers=st.integers(3, 6))
def test_all_false_mask_is_bit_identical_to_no_mask(seed, n_objects,
                                                    n_workers):
    """Property: with no object concluded, pruning must be invisible.

    Every strategy's selection under an explicit all-False mask equals the
    selection under ``concluded=None`` exactly — same object, same
    sub-strategy — across random answer sets and tie-break seeds.
    """
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2, size=(n_objects, n_workers))
    answer_set = AnswerSet(matrix, labels=("T", "F"))
    aggregator = IncrementalEM()
    prob_set = aggregator.conclude(
        answer_set, ExpertValidation.empty_for(answer_set))
    for strategy in _strategies():
        contexts = []
        for concluded in (None, np.zeros(n_objects, dtype=bool)):
            contexts.append(GuidanceContext(
                prob_set=prob_set, aggregator=aggregator,
                detector=SpammerDetector(),
                rng=np.random.default_rng(seed + 1),
                hybrid_weight=0.5, concluded=concluded))
        bare, masked = (strategy.select(c) for c in contexts)
        assert bare == masked, type(strategy).__name__


class TestScenarioConformanceWithTargets:
    def test_disabled_targets_record_no_conclusions(self):
        runner = ScenarioRunner()
        scenario = compile_registered("reliability-drift")
        _, steps = runner.run_batch(scenario, "exact")
        assert all(step.concluded_objects == () for step in steps)

    def test_enabled_targets_stay_conformant(self):
        """Batch ↔ streaming ↔ resume ↔ faults all L∞ = 0 with targets on."""
        runner = ScenarioRunner(quality_target=QualityTarget(0.95))
        outcome = runner.run(compile_registered("reliability-drift"),
                             "exact", check=True)
        assert outcome.streaming_divergence.max_abs_posterior_gap == 0.0
        assert outcome.resume_divergence.max_abs_posterior_gap == 0.0

    def test_enabled_targets_shrink_effort(self):
        scenario_name = "label-skew"
        static = ScenarioRunner()
        targeted = ScenarioRunner(quality_target=QualityTarget(0.9))
        _, static_steps = static.run_batch(
            compile_registered(scenario_name), "exact")
        _, targeted_steps = targeted.run_batch(
            compile_registered(scenario_name), "exact")
        assert len(targeted_steps) <= len(static_steps)
        assert any(step.concluded_objects for step in targeted_steps)

    def test_crash_resume_restores_mask(self):
        runner = ScenarioRunner(quality_target=QualityTarget(0.95),
                                n_kills=3, checkpoint_every=2)
        scenario = compile_registered("sleeper-spammers")
        process, steps = runner.run_batch(scenario, "exact")
        streaming = runner.replay_streaming(scenario, steps, process.session)
        # replay_crash_resume raises ConformanceError itself if the mask
        # diverges from the recorded union; the posteriors must also match.
        resumed = runner.replay_crash_resume(scenario, steps,
                                             process.session)
        assert float(np.max(np.abs(streaming - resumed))) == 0.0


class TestGoalErrorAtConstruction:
    def test_precision_goal_without_gold_fails_fast(self, small_crowd):
        with pytest.raises(GoalError, match="gold"):
            ValidationProcess(
                small_crowd.answer_set, OracleExpert(small_crowd.gold),
                strategy=MaxEntropyStrategy(), goal=PrecisionReached(1.0),
                rng=0)

    def test_goal_error_outside_process_still_raised(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), gold=small_crowd.gold, rng=0)
        process.gold = None  # simulate evaluation without gold
        with pytest.raises(GoalError, match="gold"):
            PrecisionReached(1.0).satisfied(process)
